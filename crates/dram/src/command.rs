//! DRAM command kinds and the command trace collected during simulation.
//!
//! Traces are on the per-command hot path of the functional simulator, so they are stored
//! compactly: one byte per command (an index into a small table of distinct
//! (kind, latency, energy) cost combinations) plus incrementally maintained totals and
//! per-slot counters. Full [`DramCommand`] values are reconstructed lazily by
//! [`CommandTrace::commands`]. Compared to storing a 24-byte `DramCommand` per command
//! this is a ~24× reduction in trace memory and removes all per-command heap traffic
//! beyond the amortized 1-byte vector push.

use std::fmt;

use crate::config::DramConfig;

/// Compact row-address tags carried by [`DramCommand::row`].
///
/// The trace's row addresses exist for *classification* (the bank-state replay's
/// row-buffer hit/miss/conflict decisions), not for addressing storage, so they are
/// encoded as a single `u32` tag per command covering the three address families a
/// command's first activation can name:
///
/// * **data rows** — the physical data-row index, verbatim ([`data`](rowtag::data));
/// * **B-group rows** — `0xFF00_0000 + index` within [`crate::BGroupRow::ALL`]
///   ([`bgroup`](rowtag::bgroup));
/// * **TRA triples** — `0xFE00_0000` with the three (sorted) B-group indices packed a
///   byte each ([`tra`](rowtag::tra)), so a triple compares equal regardless of operand
///   order.
///
/// [`UNKNOWN`](rowtag::UNKNOWN) (`u32::MAX`) marks commands recorded without an address
/// (cost templates,
/// pre-addressing traces); the replay falls back to the historical kind-transition
/// convention for them, which keeps old traces and hand-built tests classifying exactly
/// as before.
pub mod rowtag {
    /// No row address recorded: classification falls back to the kind convention.
    pub const UNKNOWN: u32 = u32::MAX;
    /// Base of the B-group tag family.
    const BGROUP_BASE: u32 = 0xFF00_0000;
    /// Base of the TRA-triple tag family.
    const TRA_BASE: u32 = 0xFE00_0000;

    /// Tag of a regular data row.
    pub fn data(row: usize) -> u32 {
        let tag = u32::try_from(row).unwrap_or(UNKNOWN);
        if tag >= TRA_BASE {
            UNKNOWN
        } else {
            tag
        }
    }

    /// Tag of a B-group row, by its index within [`crate::BGroupRow::ALL`].
    pub fn bgroup(index: usize) -> u32 {
        BGROUP_BASE + index as u32
    }

    /// Tag of a TRA triple, by the three B-group indices of its operands. The indices
    /// are sorted before packing, so the tag is operand-order independent — exactly
    /// like the majority the activation computes.
    pub fn tra(a: usize, b: usize, c: usize) -> u32 {
        let mut idx = [a as u32, b as u32, c as u32];
        idx.sort_unstable();
        TRA_BASE | (idx[0] << 16) | (idx[1] << 8) | idx[2]
    }

    /// Returns `true` for tags in the B-group family.
    pub fn is_bgroup(tag: u32) -> bool {
        (BGROUP_BASE..UNKNOWN).contains(&tag)
    }

    /// Returns `true` for tags in the TRA-triple family.
    pub fn is_tra(tag: u32) -> bool {
        (TRA_BASE..BGROUP_BASE).contains(&tag)
    }

    /// Whether a sense-amplifier latch left by a command with tag `latch` already
    /// holds what an activation of `row` needs: the same tag, or — after a TRA — any
    /// single B-group row the triple restored.
    pub fn latch_covers(latch: u32, row: u32) -> bool {
        if latch == UNKNOWN || row == UNKNOWN {
            return false;
        }
        if latch == row {
            return true;
        }
        if is_tra(latch) && is_bgroup(row) {
            let member = row - BGROUP_BASE;
            let triple = latch - TRA_BASE;
            return [triple >> 16, (triple >> 8) & 0xFF, triple & 0xFF].contains(&member);
        }
        false
    }
}

/// The kind of a DRAM command issued to a subarray.
///
/// The substrate distinguishes the command templates that matter for SIMDRAM's latency and
/// energy accounting. `ActivatePrecharge`/`TripleRowActivate` correspond to the paper's `AP`
/// template, `ActivateActivatePrecharge` to the `AAP` template, and `Read`/`Write` to
/// conventional column accesses over the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Single-row ACTIVATE followed by PRECHARGE (`AP`).
    ActivatePrecharge,
    /// Triple-row ACTIVATE followed by PRECHARGE (`AP` with a TRA address): computes the
    /// bitwise majority of three B-group rows in place.
    TripleRowActivate,
    /// ACTIVATE → ACTIVATE → PRECHARGE (`AAP`): copies the first row into the second through
    /// the sense amplifiers (RowClone-FPM).
    ActivateActivatePrecharge,
    /// Conventional burst read of a row segment over the memory channel.
    Read,
    /// Conventional burst write of a row segment over the memory channel.
    Write,
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommandKind::ActivatePrecharge => "AP",
            CommandKind::TripleRowActivate => "AP(TRA)",
            CommandKind::ActivateActivatePrecharge => "AAP",
            CommandKind::Read => "RD",
            CommandKind::Write => "WR",
        };
        f.write_str(s)
    }
}

/// One issued DRAM command, as recorded in a [`CommandTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct DramCommand {
    /// The command template.
    pub kind: CommandKind,
    /// Latency charged for this command, in nanoseconds.
    pub latency_ns: f64,
    /// Energy charged for this command, in nanojoules.
    pub energy_nj: f64,
    /// Row-address tag of the command's first activation (see [`rowtag`]);
    /// [`rowtag::UNKNOWN`] when the command was recorded without an address (cost
    /// templates, pre-addressing traces). Never affects latency/energy accounting —
    /// only the bank-state replay's row-buffer classification reads it.
    pub row: u32,
}

impl DramCommand {
    /// Returns this command with its row tag replaced.
    pub fn with_row(mut self, row: u32) -> Self {
        self.row = row;
        self
    }
}

/// The six command cost templates a subarray geometry charges, derived once from a
/// [`DramConfig`].
///
/// [`crate::Subarray`] builds its pre-registered trace slots from this table, and the
/// μProgram compiler builds [`TraceAggregate`]s from the *same* table — so the `f64`
/// latency/energy bit patterns are single-sourced and a compiled program's aggregate
/// always matches the slots the executing subarray already registered (cost-table lookups
/// stay allocation-free on the hot path).
#[derive(Debug, Clone, PartialEq)]
pub struct CommandCosts {
    /// Index order: Write, Read, AAP, AAP(TRA source), TRA, AP — must match the
    /// subarray's internal cost indexing.
    templates: [DramCommand; 6],
}

impl CommandCosts {
    /// Derives the cost templates for the geometry and timing/energy models of `config`.
    pub fn new(config: &DramConfig) -> Self {
        let columns = config.columns_per_row;
        let row_bits = columns;
        // Templates are addressless (rowtag::UNKNOWN): the recording site supplies the
        // concrete row tag per command.
        let cmd = |kind, latency_ns, energy_nj| DramCommand {
            kind,
            latency_ns,
            energy_nj,
            row: rowtag::UNKNOWN,
        };
        CommandCosts {
            templates: [
                cmd(
                    CommandKind::Write,
                    config.timing.row_write_ns(columns / 8),
                    config.energy.channel_transfer_nj(row_bits),
                ),
                cmd(
                    CommandKind::Read,
                    config.timing.row_read_ns(columns / 8),
                    config.energy.channel_transfer_nj(row_bits),
                ),
                cmd(
                    CommandKind::ActivateActivatePrecharge,
                    config.timing.aap_ns(),
                    config.energy.aap_nj(false),
                ),
                cmd(
                    CommandKind::ActivateActivatePrecharge,
                    config.timing.aap_ns(),
                    config.energy.aap_nj(true),
                ),
                cmd(
                    CommandKind::TripleRowActivate,
                    config.timing.ap_ns(),
                    config.energy.ap_nj(true),
                ),
                cmd(
                    CommandKind::ActivatePrecharge,
                    config.timing.ap_ns(),
                    config.energy.ap_nj(false),
                ),
            ],
        }
    }

    /// Cost of a conventional full-row `WR` burst over the channel.
    pub fn write(&self) -> &DramCommand {
        &self.templates[0]
    }

    /// Cost of a conventional full-row `RD` burst over the channel.
    pub fn read(&self) -> &DramCommand {
        &self.templates[1]
    }

    /// Cost of a RowClone-FPM copy (`AAP`).
    pub fn aap(&self) -> &DramCommand {
        &self.templates[2]
    }

    /// Cost of an `AAP` whose first activation is a triple-row activation.
    pub fn aap_tra(&self) -> &DramCommand {
        &self.templates[3]
    }

    /// Cost of a triple-row activation (`AP` with a TRA address).
    pub fn tra(&self) -> &DramCommand {
        &self.templates[4]
    }

    /// Cost of a plain single-row `AP`.
    pub fn ap(&self) -> &DramCommand {
        &self.templates[5]
    }

    /// The raw template table, in the subarray's internal cost index order.
    pub(crate) fn templates(&self) -> &[DramCommand; 6] {
        &self.templates
    }
}

/// A pre-registered cost-table index of a [`CommandTrace`], obtained from
/// [`CommandTrace::register`]. Valid for the registering trace until its next
/// [`CommandTrace::clear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSlot(u8);

/// One distinct (kind, latency, energy) cost combination plus the number of commands
/// recorded with it (including commands whose per-command history was drained).
#[derive(Debug, Clone, PartialEq)]
struct CostSlot {
    kind: CommandKind,
    latency_ns: f64,
    energy_nj: f64,
    count: usize,
}

impl CostSlot {
    fn command(&self) -> DramCommand {
        DramCommand {
            kind: self.kind,
            latency_ns: self.latency_ns,
            energy_nj: self.energy_nj,
            row: rowtag::UNKNOWN,
        }
    }
}

/// An append-only trace of issued commands with aggregate counters.
///
/// Storage is compact (see this module's documentation): the per-command history is a
/// `Vec<u8>` of indices into a per-trace cost table, and kind counts plus latency/energy
/// totals are maintained incrementally on every [`CommandTrace::push`]. A subarray only
/// ever produces a handful of distinct cost combinations, so the table stays tiny; traces
/// support at most 256 distinct combinations.
///
/// Long-running owners can call [`CommandTrace::drain_history`] to drop the per-command
/// history while keeping every aggregate (length, per-kind counts, totals) intact — this
/// is what keeps a [`crate::Subarray`]'s cumulative trace bounded across repeated
/// μProgram executions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommandTrace {
    /// Per-command cost-table indices for the retained history.
    ops: Vec<u8>,
    /// Per-command row-address tags (see [`rowtag`]), parallel to `ops`. Rows exist
    /// only for the retained history — draining drops them with the ops — and never
    /// feed the aggregate totals.
    rows: Vec<u32>,
    /// Distinct cost combinations seen by this trace, in first-seen order.
    slots: Vec<CostSlot>,
    /// Number of commands whose history was dropped by [`CommandTrace::drain_history`].
    drained: usize,
    total_latency_ns: f64,
    total_energy_nj: f64,
}

impl CommandTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a command.
    ///
    /// # Panics
    ///
    /// Panics if the trace would need more than 256 distinct (kind, latency, energy)
    /// cost combinations — far beyond what any substrate configuration produces.
    pub fn push(&mut self, command: DramCommand) {
        let slot = self.slot_index(&command);
        self.record_at(TraceSlot(slot), command.row);
    }

    /// Pre-registers a cost combination, returning a [`TraceSlot`] that
    /// [`CommandTrace::record`] accepts for search-free recording on the per-command hot
    /// path. Registering does not record anything; registering the same combination
    /// twice returns the same slot.
    ///
    /// # Panics
    ///
    /// Panics on cost-table overflow, like [`CommandTrace::push`].
    pub fn register(&mut self, command: DramCommand) -> TraceSlot {
        TraceSlot(self.slot_index(&command))
    }

    /// Records one command of a pre-registered cost combination (see
    /// [`CommandTrace::register`]): one table lookup, two running-total additions and a
    /// 1-byte history push.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not come from [`CommandTrace::register`] on this trace (or
    /// the table was since [`CommandTrace::clear`]ed).
    pub fn record(&mut self, slot: TraceSlot) {
        self.record_at(slot, rowtag::UNKNOWN);
    }

    /// Like [`CommandTrace::record`], additionally tagging the command with the row
    /// address its first activation names (see [`rowtag`]). The tag is pure metadata
    /// for row-buffer classification; the aggregate accounting is identical to
    /// [`CommandTrace::record`].
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not come from [`CommandTrace::register`] on this trace.
    pub fn record_at(&mut self, slot: TraceSlot, row: u32) {
        let entry = &mut self.slots[slot.0 as usize];
        entry.count += 1;
        self.total_latency_ns += entry.latency_ns;
        self.total_energy_nj += entry.energy_nj;
        self.ops.push(slot.0);
        self.rows.push(row);
    }

    fn slot_index(&mut self, command: &DramCommand) -> u8 {
        let found = self.slots.iter().position(|s| {
            s.kind == command.kind
                && s.latency_ns.to_bits() == command.latency_ns.to_bits()
                && s.energy_nj.to_bits() == command.energy_nj.to_bits()
        });
        match found {
            Some(i) => i as u8,
            None => {
                assert!(
                    self.slots.len() < 256,
                    "CommandTrace cost table overflow: more than 256 distinct command costs"
                );
                self.slots.push(CostSlot {
                    kind: command.kind,
                    latency_ns: command.latency_ns,
                    energy_nj: command.energy_nj,
                    count: 0,
                });
                (self.slots.len() - 1) as u8
            }
        }
    }

    /// Reserves capacity for at least `additional` more commands, so a μProgram of known
    /// length can be traced without reallocating mid-execution.
    pub fn reserve(&mut self, additional: usize) {
        self.ops.reserve(additional);
        self.rows.reserve(additional);
    }

    /// Lazily reconstructs the retained per-command history, in issue order.
    ///
    /// Commands dropped by [`CommandTrace::drain_history`] are not included (their counts
    /// and costs remain in the aggregates).
    pub fn commands(&self) -> impl Iterator<Item = DramCommand> + '_ {
        self.ops
            .iter()
            .zip(&self.rows)
            .map(move |(&idx, &row)| self.slots[idx as usize].command().with_row(row))
    }

    /// Number of recorded commands, including drained history.
    pub fn len(&self) -> usize {
        self.drained + self.ops.len()
    }

    /// Number of commands whose per-command history is still retained (and therefore
    /// reconstructable via [`CommandTrace::commands`]).
    pub fn history_len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if no commands were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of commands of the given kind, including drained history.
    pub fn count(&self, kind: CommandKind) -> usize {
        self.slots
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.count)
            .sum()
    }

    /// Iterates over (kind, count) aggregates, one entry per cost-table slot with at
    /// least one recorded command (pre-registered but unused slots are skipped).
    ///
    /// A kind can appear more than once (e.g. plain `AAP` and `AAP` with a TRA source
    /// charge different energies); callers summing into their own per-kind aggregates are
    /// unaffected.
    pub fn kind_counts(&self) -> impl Iterator<Item = (CommandKind, usize)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.count > 0)
            .map(|s| (s.kind, s.count))
    }

    /// Sum of the latencies of all recorded commands (sequential issue), in nanoseconds.
    pub fn total_latency_ns(&self) -> f64 {
        self.total_latency_ns
    }

    /// Sum of the energies of all recorded commands, in nanojoules.
    pub fn total_energy_nj(&self) -> f64 {
        self.total_energy_nj
    }

    /// Merges `other` into `self`: retained history is appended, and aggregates —
    /// including those of commands `other` has [drained](CommandTrace::drain_history) —
    /// carry over in full (drained commands stay history-less in the merged trace).
    pub fn merge(&mut self, other: &CommandTrace) {
        // Remap other's cost table into self's, then splice counts, history and totals.
        let mut remap = [0u8; 256];
        for (i, slot) in other.slots.iter().enumerate() {
            let idx = self.slot_index(&slot.command());
            remap[i] = idx;
            self.slots[idx as usize].count += slot.count;
        }
        self.reserve(other.ops.len());
        self.ops
            .extend(other.ops.iter().map(|&op| remap[op as usize]));
        self.rows.extend_from_slice(&other.rows);
        self.drained += other.drained;
        self.total_latency_ns += other.total_latency_ns;
        self.total_energy_nj += other.total_energy_nj;
    }

    /// Applies a pre-computed [`TraceAggregate`] in one shot: per-slot counts and the
    /// latency/energy totals are added with a handful of operations instead of one
    /// [`CommandTrace::record`] per command.
    ///
    /// With `with_history` the aggregate's per-command history is appended (remapped into
    /// this trace's cost table) so [`CommandTrace::commands`] can still reconstruct it;
    /// without it the commands are accounted as already-drained history, which keeps the
    /// fast path free of per-command memory traffic entirely.
    ///
    /// When every cost in the aggregate is already registered (bit-identical latency and
    /// energy, as guaranteed by building both from one [`CommandCosts`]), applying without
    /// history performs no allocation.
    ///
    /// # Panics
    ///
    /// Panics on cost-table overflow, like [`CommandTrace::push`].
    pub fn apply_aggregate(&mut self, aggregate: &TraceAggregate, with_history: bool) {
        if with_history {
            self.apply_aggregate_inner(aggregate, Some(aggregate.rows.iter().copied()));
        } else {
            self.apply_aggregate_inner(aggregate, None::<std::iter::Empty<u32>>);
        }
    }

    /// Like [`CommandTrace::apply_aggregate`] with history, but substituting `rows`
    /// (one row tag per aggregated command, in issue order) for the aggregate's own
    /// row history. This is how a pre-aggregated block compiled against *symbolic*
    /// rows charges the concrete addresses each run resolves.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` differs from the aggregate's command count, or on
    /// cost-table overflow like [`CommandTrace::push`].
    pub fn apply_aggregate_with_rows(&mut self, aggregate: &TraceAggregate, rows: &[u32]) {
        self.apply_aggregate_rows_with(aggregate, rows.iter().copied());
    }

    /// Iterator-taking form of [`CommandTrace::apply_aggregate_with_rows`], for callers
    /// that resolve row tags on the fly (the compiled row-op path, which must not
    /// allocate an intermediate buffer on its per-application hot path).
    ///
    /// # Panics
    ///
    /// Panics if the iterator's length differs from the aggregate's command count, or
    /// on cost-table overflow like [`CommandTrace::push`].
    pub fn apply_aggregate_rows_with<I>(&mut self, aggregate: &TraceAggregate, rows: I)
    where
        I: ExactSizeIterator<Item = u32>,
    {
        assert_eq!(
            rows.len(),
            aggregate.ops.len(),
            "one row tag per aggregated command"
        );
        self.apply_aggregate_inner(aggregate, Some(rows));
    }

    fn apply_aggregate_inner<I>(&mut self, aggregate: &TraceAggregate, rows: Option<I>)
    where
        I: ExactSizeIterator<Item = u32>,
    {
        let mut remap = [0u8; 256];
        for (i, slot) in aggregate.slots.iter().enumerate() {
            let idx = self.slot_index(&slot.command());
            remap[i] = idx;
            self.slots[idx as usize].count += slot.count;
        }
        self.total_latency_ns += aggregate.total_latency_ns;
        self.total_energy_nj += aggregate.total_energy_nj;
        if let Some(rows) = rows {
            self.reserve(aggregate.ops.len());
            self.ops
                .extend(aggregate.ops.iter().map(|&op| remap[op as usize]));
            self.rows.extend(rows);
        } else {
            self.drained += aggregate.ops.len();
        }
    }

    /// Returns a new trace containing only the commands recorded at or after position
    /// `mark` (a value previously obtained from [`CommandTrace::len`]).
    ///
    /// Totals are recomputed command-by-command in issue order, so the returned trace is a
    /// self-contained accounting of exactly the suffix — this is how per-broadcast
    /// command/latency/energy deltas are extracted without sharing mutable state
    /// between execution chunks. Marks taken before a [`CommandTrace::drain_history`]
    /// call clamp to the retained history.
    pub fn since(&self, mark: usize) -> CommandTrace {
        let start = mark.saturating_sub(self.drained).min(self.ops.len());
        let mut suffix = CommandTrace::new();
        suffix.reserve(self.ops.len() - start);
        for (&idx, &row) in self.ops[start..].iter().zip(&self.rows[start..]) {
            suffix.push(self.slots[idx as usize].command().with_row(row));
        }
        suffix
    }

    /// Drops the per-command history while keeping every aggregate — length, per-kind
    /// counts and latency/energy totals — intact.
    ///
    /// This bounds the memory of cumulative traces: owners that have already absorbed the
    /// per-command history (e.g. a machine merging per-broadcast traces) drain it so
    /// long-running simulations do not grow without bound.
    pub fn drain_history(&mut self) {
        self.drained += self.ops.len();
        self.ops.clear();
        self.rows.clear();
    }

    /// Clears the trace, including aggregates and the cost table.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.rows.clear();
        self.slots.clear();
        self.drained = 0;
        self.total_latency_ns = 0.0;
        self.total_energy_nj = 0.0;
    }
}

/// The accounting of a fixed command sequence, pre-aggregated so it can be charged to a
/// [`CommandTrace`] in one shot via [`CommandTrace::apply_aggregate`].
///
/// An aggregate stores the per-slot counts, the compact per-command history and the
/// latency/energy totals of the sequence it was built from. The totals are accumulated by
/// the *same* issue-order repeated addition [`CommandTrace::push`] performs, so a trace
/// built from an aggregate is bit-identical (including `f64` rounding) to a trace that
/// recorded the sequence command by command — this is what lets the compiled μProgram
/// fast path reproduce the interpreted path's accounting exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceAggregate {
    slots: Vec<CostSlot>,
    ops: Vec<u8>,
    /// Per-command row tags, parallel to `ops` (the source commands' [`rowtag`]s).
    rows: Vec<u32>,
    total_latency_ns: f64,
    total_energy_nj: f64,
}

impl TraceAggregate {
    /// Builds the aggregate of `commands`, in issue order.
    ///
    /// # Panics
    ///
    /// Panics on cost-table overflow, like [`CommandTrace::push`].
    pub fn from_commands(commands: impl IntoIterator<Item = DramCommand>) -> Self {
        let mut trace = CommandTrace::new();
        for command in commands {
            trace.push(command);
        }
        TraceAggregate {
            slots: trace.slots,
            ops: trace.ops,
            rows: trace.rows,
            total_latency_ns: trace.total_latency_ns,
            total_energy_nj: trace.total_energy_nj,
        }
    }

    /// Number of commands in the aggregated sequence.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the aggregated sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Sum of the latencies of the aggregated commands (sequential issue), in nanoseconds.
    pub fn total_latency_ns(&self) -> f64 {
        self.total_latency_ns
    }

    /// Sum of the energies of the aggregated commands, in nanojoules.
    pub fn total_energy_nj(&self) -> f64 {
        self.total_energy_nj
    }

    /// Materializes the aggregate as a self-contained [`CommandTrace`], with or without
    /// the reconstructable per-command history.
    pub fn to_trace(&self, with_history: bool) -> CommandTrace {
        let mut trace = CommandTrace::new();
        trace.apply_aggregate(self, with_history);
        trace
    }

    /// Like [`TraceAggregate::to_trace`] with history, substituting `rows` for the
    /// aggregate's own row history (see [`CommandTrace::apply_aggregate_with_rows`]).
    pub fn to_trace_with_rows(&self, rows: &[u32]) -> CommandTrace {
        let mut trace = CommandTrace::new();
        trace.apply_aggregate_with_rows(self, rows);
        trace
    }

    /// Rebuilds `out` (cleared first, retaining its buffers) from this aggregate, for
    /// callers reusing one local-trace allocation across executions.
    pub fn write_trace(&self, out: &mut CommandTrace, with_history: bool) {
        out.clear();
        out.apply_aggregate(self, with_history);
    }

    /// Like [`TraceAggregate::write_trace`] with history, substituting `rows` for the
    /// aggregate's own row history.
    pub fn write_trace_with_rows(&self, out: &mut CommandTrace, rows: &[u32]) {
        out.clear();
        out.apply_aggregate_with_rows(self, rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(kind: CommandKind) -> DramCommand {
        DramCommand {
            kind,
            latency_ns: 10.0,
            energy_nj: 2.0,
            row: rowtag::UNKNOWN,
        }
    }

    #[test]
    fn trace_accumulates_totals() {
        let mut trace = CommandTrace::new();
        assert!(trace.is_empty());
        trace.push(cmd(CommandKind::ActivatePrecharge));
        trace.push(cmd(CommandKind::ActivateActivatePrecharge));
        trace.push(cmd(CommandKind::ActivateActivatePrecharge));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.count(CommandKind::ActivateActivatePrecharge), 2);
        assert_eq!(trace.count(CommandKind::Read), 0);
        assert!((trace.total_latency_ns() - 30.0).abs() < 1e-12);
        assert!((trace.total_energy_nj() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn commands_reconstruct_the_issue_order() {
        let mut trace = CommandTrace::new();
        trace.push(cmd(CommandKind::Read));
        trace.push(cmd(CommandKind::TripleRowActivate));
        trace.push(cmd(CommandKind::Read));
        let kinds: Vec<CommandKind> = trace.commands().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![
                CommandKind::Read,
                CommandKind::TripleRowActivate,
                CommandKind::Read
            ]
        );
        assert!(trace.commands().all(|c| c.latency_ns == 10.0));
    }

    #[test]
    fn same_kind_with_different_costs_gets_distinct_slots() {
        // Plain AAP and AAP-with-TRA-source share a kind but charge different energies;
        // the trace must reconstruct each command with its exact cost.
        let mut trace = CommandTrace::new();
        trace.push(DramCommand {
            kind: CommandKind::ActivateActivatePrecharge,
            latency_ns: 10.0,
            energy_nj: 2.0,
            row: rowtag::UNKNOWN,
        });
        trace.push(DramCommand {
            kind: CommandKind::ActivateActivatePrecharge,
            latency_ns: 10.0,
            energy_nj: 3.5,
            row: rowtag::UNKNOWN,
        });
        assert_eq!(trace.count(CommandKind::ActivateActivatePrecharge), 2);
        let energies: Vec<f64> = trace.commands().map(|c| c.energy_nj).collect();
        assert_eq!(energies, vec![2.0, 3.5]);
        assert!((trace.total_energy_nj() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn merge_concatenates_traces() {
        let mut a = CommandTrace::new();
        a.push(cmd(CommandKind::Read));
        let mut b = CommandTrace::new();
        b.push(cmd(CommandKind::Write));
        b.push(cmd(CommandKind::TripleRowActivate));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.count(CommandKind::Write), 1);
        assert!((a.total_latency_ns() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn merge_preserves_drained_aggregates() {
        let mut src = CommandTrace::new();
        src.push(cmd(CommandKind::Read));
        src.push(cmd(CommandKind::Write));
        src.drain_history();
        src.push(cmd(CommandKind::TripleRowActivate));
        let mut dst = CommandTrace::new();
        dst.push(cmd(CommandKind::Read));
        dst.merge(&src);
        // All three of src's commands count, even though two were drained.
        assert_eq!(dst.len(), 4);
        assert_eq!(dst.count(CommandKind::Read), 2);
        assert_eq!(dst.count(CommandKind::Write), 1);
        assert!((dst.total_latency_ns() - 40.0).abs() < 1e-12);
        assert!((dst.total_energy_nj() - 8.0).abs() < 1e-12);
        // Only the retained history is reconstructable.
        assert_eq!(dst.history_len(), 2);
        let kinds: Vec<CommandKind> = dst.commands().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![CommandKind::Read, CommandKind::TripleRowActivate]
        );
    }

    #[test]
    fn since_extracts_a_self_contained_suffix() {
        let mut trace = CommandTrace::new();
        trace.push(cmd(CommandKind::Read));
        let mark = trace.len();
        trace.push(cmd(CommandKind::ActivateActivatePrecharge));
        trace.push(cmd(CommandKind::TripleRowActivate));
        let suffix = trace.since(mark);
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix.count(CommandKind::Read), 0);
        assert_eq!(suffix.count(CommandKind::ActivateActivatePrecharge), 1);
        assert!((suffix.total_latency_ns() - 20.0).abs() < 1e-12);
        assert!((suffix.total_energy_nj() - 4.0).abs() < 1e-12);
        // A mark past the end yields an empty trace, not a panic.
        assert!(trace.since(trace.len()).is_empty());
        assert!(trace.since(trace.len() + 10).is_empty());
    }

    #[test]
    fn drain_history_keeps_aggregates() {
        let mut trace = CommandTrace::new();
        trace.push(cmd(CommandKind::Read));
        trace.push(cmd(CommandKind::Write));
        trace.drain_history();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.history_len(), 0);
        assert_eq!(trace.count(CommandKind::Read), 1);
        assert!((trace.total_latency_ns() - 20.0).abs() < 1e-12);
        assert_eq!(trace.commands().count(), 0);
        // Marks keep working across a drain: new commands land after the drained region.
        let mark = trace.len();
        trace.push(cmd(CommandKind::TripleRowActivate));
        let suffix = trace.since(mark);
        assert_eq!(suffix.len(), 1);
        assert_eq!(suffix.count(CommandKind::TripleRowActivate), 1);
        // A stale mark from before the drain clamps to the retained history.
        assert_eq!(trace.since(0).len(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a = CommandTrace::new();
        a.push(cmd(CommandKind::Read));
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.total_energy_nj(), 0.0);
        assert_eq!(a.count(CommandKind::Read), 0);
    }

    #[test]
    fn aggregate_matches_per_command_recording_bit_for_bit() {
        let costs = CommandCosts::new(&DramConfig::tiny());
        let sequence = vec![
            costs.aap().clone(),
            costs.aap_tra().clone(),
            costs.tra().clone(),
            costs.aap().clone(),
            costs.aap().clone(),
        ];
        let mut recorded = CommandTrace::new();
        for c in &sequence {
            recorded.push(c.clone());
        }
        let aggregate = TraceAggregate::from_commands(sequence);
        assert_eq!(aggregate.len(), 5);
        let applied = aggregate.to_trace(true);
        // Bit-identical totals, identical slot layout and history: full equality.
        assert_eq!(applied, recorded);
        assert_eq!(
            applied.total_latency_ns().to_bits(),
            recorded.total_latency_ns().to_bits()
        );
        // Without history the commands count as drained but every aggregate survives.
        let drained = aggregate.to_trace(false);
        assert_eq!(drained.len(), 5);
        assert_eq!(drained.history_len(), 0);
        assert_eq!(
            drained.total_energy_nj().to_bits(),
            recorded.total_energy_nj().to_bits()
        );
        assert_eq!(
            drained.kind_counts().collect::<Vec<_>>(),
            recorded.kind_counts().collect::<Vec<_>>()
        );
    }

    #[test]
    fn apply_aggregate_accumulates_onto_existing_traces() {
        let costs = CommandCosts::new(&DramConfig::tiny());
        let aggregate =
            TraceAggregate::from_commands(vec![costs.aap().clone(), costs.tra().clone()]);
        let mut trace = CommandTrace::new();
        trace.push(costs.aap().clone());
        trace.apply_aggregate(&aggregate, true);
        trace.apply_aggregate(&aggregate, false);
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.history_len(), 3);
        assert_eq!(trace.count(CommandKind::ActivateActivatePrecharge), 3);
        assert_eq!(trace.count(CommandKind::TripleRowActivate), 2);
    }

    #[test]
    fn write_trace_reuses_the_output_buffers() {
        let costs = CommandCosts::new(&DramConfig::tiny());
        let aggregate = TraceAggregate::from_commands(vec![costs.aap().clone()]);
        let mut out = CommandTrace::new();
        aggregate.write_trace(&mut out, true);
        aggregate.write_trace(&mut out, true);
        // Rebuilt from scratch each time, not accumulated.
        assert_eq!(out.len(), 1);
        assert_eq!(out.history_len(), 1);
    }

    #[test]
    fn command_kind_display() {
        assert_eq!(CommandKind::ActivateActivatePrecharge.to_string(), "AAP");
        assert_eq!(CommandKind::TripleRowActivate.to_string(), "AP(TRA)");
    }

    #[test]
    fn row_tags_survive_push_since_and_merge() {
        let mut trace = CommandTrace::new();
        trace.push(cmd(CommandKind::Read).with_row(rowtag::data(7)));
        let mark = trace.len();
        trace.push(cmd(CommandKind::ActivateActivatePrecharge).with_row(rowtag::bgroup(0)));
        trace.push(cmd(CommandKind::TripleRowActivate).with_row(rowtag::tra(0, 1, 2)));
        let rows: Vec<u32> = trace.commands().map(|c| c.row).collect();
        assert_eq!(
            rows,
            vec![rowtag::data(7), rowtag::bgroup(0), rowtag::tra(0, 1, 2)]
        );
        // The suffix keeps its rows; merging appends them unchanged.
        let suffix = trace.since(mark);
        let suffix_rows: Vec<u32> = suffix.commands().map(|c| c.row).collect();
        assert_eq!(suffix_rows, vec![rowtag::bgroup(0), rowtag::tra(0, 1, 2)]);
        let mut merged = CommandTrace::new();
        merged.push(cmd(CommandKind::Write).with_row(rowtag::data(3)));
        merged.merge(&suffix);
        let merged_rows: Vec<u32> = merged.commands().map(|c| c.row).collect();
        assert_eq!(
            merged_rows,
            vec![rowtag::data(3), rowtag::bgroup(0), rowtag::tra(0, 1, 2)]
        );
        // Plain record() (no address) tags UNKNOWN.
        let mut plain = CommandTrace::new();
        let slot = plain.register(cmd(CommandKind::Read));
        plain.record(slot);
        assert_eq!(plain.commands().next().unwrap().row, rowtag::UNKNOWN);
    }

    #[test]
    fn row_tag_families_are_disjoint_and_order_independent() {
        assert_eq!(rowtag::tra(2, 0, 1), rowtag::tra(0, 1, 2));
        assert!(rowtag::is_tra(rowtag::tra(0, 1, 2)));
        assert!(rowtag::is_bgroup(rowtag::bgroup(9)));
        assert!(!rowtag::is_bgroup(rowtag::data(5)));
        assert!(!rowtag::is_tra(rowtag::bgroup(0)));
        assert_ne!(rowtag::bgroup(0), rowtag::UNKNOWN);
        // A TRA latch covers each of its members and the triple itself, nothing else.
        let latch = rowtag::tra(0, 1, 2);
        for member in 0..3 {
            assert!(rowtag::latch_covers(latch, rowtag::bgroup(member)));
        }
        assert!(rowtag::latch_covers(latch, latch));
        assert!(!rowtag::latch_covers(latch, rowtag::bgroup(3)));
        assert!(!rowtag::latch_covers(latch, rowtag::data(0)));
        assert!(!rowtag::latch_covers(rowtag::UNKNOWN, rowtag::data(0)));
        assert!(!rowtag::latch_covers(rowtag::data(4), rowtag::UNKNOWN));
        assert!(rowtag::latch_covers(rowtag::data(4), rowtag::data(4)));
    }

    #[test]
    fn aggregate_with_rows_substitutes_resolved_addresses() {
        let costs = CommandCosts::new(&DramConfig::tiny());
        let aggregate =
            TraceAggregate::from_commands(vec![costs.aap().clone(), costs.tra().clone()]);
        let rows = [rowtag::data(12), rowtag::tra(0, 1, 2)];
        let trace = aggregate.to_trace_with_rows(&rows);
        assert_eq!(trace.len(), 2);
        let tagged: Vec<u32> = trace.commands().map(|c| c.row).collect();
        assert_eq!(tagged, rows);
        // Totals match the addressless materialization bit for bit.
        let plain = aggregate.to_trace(true);
        assert_eq!(
            trace.total_latency_ns().to_bits(),
            plain.total_latency_ns().to_bits()
        );
        assert_eq!(
            trace.total_energy_nj().to_bits(),
            plain.total_energy_nj().to_bits()
        );
    }
}
