//! Shared typed parsing of the `SIMDRAM_*` environment overrides.
//!
//! Every runtime axis of the simulator — broadcast policy (`SIMDRAM_EXEC`), functional
//! mode (`SIMDRAM_FUNC`), timing backend (`SIMDRAM_TIMING`), fault model
//! (`SIMDRAM_FAULTS`) and guard mode (`SIMDRAM_GUARD`) — can be forced through an
//! environment variable so CI re-runs the whole tier-1 suite under a different engine
//! without code changes. A malformed override must never fall back to the default
//! silently: a CI job that believes it exercised the bank-state backend while re-running
//! the analytic path is worse than a failing one.
//!
//! This module is the one shared parser behind all five axes. Each axis supplies a pure
//! `&str -> Option<Self>` recognizer; [`env_override`] handles the environment read, the
//! trim/lowercase normalization and the typed [`EnvOverrideError`] on rejection. The
//! per-axis `try_from_env` constructors surface that error to callers that want a
//! recoverable configuration failure (e.g. `SimdramConfig::with_env_overrides` in
//! `simdram-core`), while the legacy `from_env` constructors keep the loud panic for
//! the test presets.

use std::fmt;

/// A set-but-malformed `SIMDRAM_*` environment override.
///
/// Carries everything needed to report the failure precisely: which variable was set,
/// the rejected value, and the grammar it was checked against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvOverrideError {
    /// The environment variable that was set (e.g. `"SIMDRAM_GUARD"`).
    pub var: &'static str,
    /// The rejected value, verbatim (before trim/lowercase normalization).
    pub value: String,
    /// The accepted grammar, in the `a | b:<n>` notation the docs use.
    pub expected: &'static str,
}

impl fmt::Display for EnvOverrideError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {} override {:?} (expected {})",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvOverrideError {}

/// Reads and parses one `SIMDRAM_*` environment override.
///
/// Returns `Ok(None)` when `var` is unset (the caller keeps its configured default),
/// `Ok(Some(value))` when `parse` recognizes the normalized (trimmed, ASCII-lowercased)
/// value, and a typed [`EnvOverrideError`] when the variable is set but malformed.
///
/// # Errors
///
/// Returns [`EnvOverrideError`] when the variable is set and `parse` rejects it.
pub fn env_override<T>(
    var: &'static str,
    expected: &'static str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Result<Option<T>, EnvOverrideError> {
    match std::env::var(var) {
        Ok(raw) => parse_override(var, expected, &raw, parse).map(Some),
        Err(_) => Ok(None),
    }
}

/// The environment-free core of [`env_override`]: normalizes `raw` and applies `parse`,
/// producing the same typed error an env read would. Exposed so every branch of every
/// axis grammar is unit-testable without touching the process environment.
///
/// # Errors
///
/// Returns [`EnvOverrideError`] when `parse` rejects the normalized value.
pub fn parse_override<T>(
    var: &'static str,
    expected: &'static str,
    raw: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Result<T, EnvOverrideError> {
    let value = raw.trim().to_ascii_lowercase();
    parse(&value).ok_or_else(|| EnvOverrideError {
        var,
        value: raw.to_string(),
        expected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_override_normalizes_and_accepts() {
        let parsed = parse_override("SIMDRAM_TEST", "on | off", "  ON ", |v| match v {
            "on" => Some(true),
            "off" => Some(false),
            _ => None,
        });
        assert_eq!(parsed, Ok(true));
    }

    #[test]
    fn parse_override_rejects_with_the_original_value() {
        let err = parse_override("SIMDRAM_TEST", "on | off", " Maybe ", |v| match v {
            "on" => Some(true),
            _ => None,
        })
        .unwrap_err();
        assert_eq!(err.var, "SIMDRAM_TEST");
        assert_eq!(err.value, " Maybe ");
        assert_eq!(err.expected, "on | off");
        let text = err.to_string();
        assert!(text.contains("SIMDRAM_TEST"));
        assert!(text.contains("Maybe"));
        assert!(text.contains("on | off"));
    }

    #[test]
    fn env_override_is_none_when_unset() {
        // The variable name is unique to this test; nothing in CI sets it.
        let read = env_override("SIMDRAM_ENVOPT_UNSET_TEST", "anything", |_| Some(()));
        assert_eq!(read, Ok(None));
    }

    #[test]
    fn error_implements_std_error() {
        let err = EnvOverrideError {
            var: "SIMDRAM_TEST",
            value: "x".into(),
            expected: "y",
        };
        let as_dyn: &dyn std::error::Error = &err;
        assert!(as_dyn.source().is_none());
    }
}
