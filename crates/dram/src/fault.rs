//! Deterministic fault injection for triple-row activation (TRA).
//!
//! SIMDRAM's correctness rests on TRA charge sharing, which the paper analyzes under
//! process variation ([`crate::variation`]). This module turns that static analysis into
//! exercised behaviour: a seeded [`FaultModel`] installs per-subarray [`FaultState`]
//! streams that flip sense-amplifier bits during TRAs, in **both** the interpreted and
//! the compiled ([`crate::rowops`]) functional paths.
//!
//! # Determinism contract
//!
//! Fault draws are a pure function of `(model seed, subarray index, TRA stream
//! position, column)` — never of wall-clock, thread schedule or execution mode. The
//! stream position is the subarray's persistent TRA counter plus the μProgram-relative
//! TRA ordinal ([`crate::RowOpBlock::maj_ordinals`]), so:
//!
//! * sequential and threaded broadcast policies inject identically;
//! * the interpreted and compiled functional modes produce **bit-identical data
//!   results**. The compiled path may elide a TRA whose restored rows are all dead —
//!   the interpreted path still executes it, but any bits it corrupts are by
//!   construction never read again, so only the *injected-fault counters* may differ
//!   between modes, never the data;
//! * re-running the same μProgram (e.g. a guarded retry) advances the stream and draws
//!   fresh faults, so transient faults clear on retry while [`FaultModel::RowMap`] weak
//!   columns keep failing.
//!
//! [`FaultModel::Tra`] only flips *marginal* columns — those whose three source cells
//! split 2-vs-1, the worst case the Monte-Carlo model in [`crate::variation`] scores —
//! because a 3-vs-0 column has three cells driving the bitline in the same direction
//! and does not fail under realistic variation.

use crate::envopt::{self, EnvOverrideError};
use crate::variation::{TechnologyNode, VariationModel};

/// Environment variable carrying the fault-model override.
const FAULTS_VAR: &str = "SIMDRAM_FAULTS";
/// Accepted `SIMDRAM_FAULTS` grammar, quoted in every rejection error.
const FAULTS_EXPECTED: &str = "off | tra:<22nm|17nm|14nm|10nm|7nm>:<seed> | rowmap:<seed>";

/// Monte-Carlo trials used to calibrate a node's per-TRA failure probability once, at
/// [`FaultModel::tra_for_node`] construction time.
const CALIBRATION_TRIALS: usize = 4_000;
/// Fixed calibration seed: the node → probability mapping is part of the model's
/// identity, independent of the injection seed.
const CALIBRATION_SEED: u64 = 0x51AD_CA1B;
/// Probability that a weak column flips on any given TRA under [`FaultModel::RowMap`].
/// High enough that a weak subarray almost never survives a retry budget (driving
/// quarantine), low enough that two redundant runs disagree with high probability
/// (making the fault *detectable* rather than silently repeated).
const WEAK_FLIP_PROBABILITY: f64 = 0.75;
/// Fraction of subarrays that carry weak columns under [`FaultModel::RowMap`] (1 in 4).
const WEAK_SUBARRAY_DENSITY: u64 = 4;
/// Weak columns per affected subarray under [`FaultModel::RowMap`].
const WEAK_COLUMNS_PER_SUBARRAY: usize = 2;

/// Which faults, if any, a [`crate::DramDevice`] injects during TRAs.
///
/// Selected through `SimdramConfig` in `simdram-core`, or forced by the
/// `SIMDRAM_FAULTS` environment override (see [`FaultModel::from_env`]) the same way
/// `SIMDRAM_EXEC` / `SIMDRAM_FUNC` / `SIMDRAM_TIMING` select their axes. The default
/// [`FaultModel::Off`] injects nothing and is bit-identical to builds predating the
/// fault subsystem.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum FaultModel {
    /// No injection (the reference behaviour).
    #[default]
    Off,
    /// Transient per-TRA bit flips: every TRA flips each *marginal* column (source
    /// cells split 2-vs-1) independently with `probability`.
    Tra {
        /// Per-TRA, per-marginal-column flip probability in `[0, 1]`.
        probability: f64,
        /// Stream seed; different seeds give statistically independent fault streams.
        seed: u64,
        /// The technology node the probability was calibrated from, when constructed
        /// via [`FaultModel::tra_for_node`].
        node: Option<TechnologyNode>,
    },
    /// Persistent weak-cell map: a seeded subset of subarrays gets fixed weak columns
    /// that flip with high probability on *every* TRA — the repeat offenders the
    /// quarantine machinery in `simdram-core` exists to retire.
    RowMap {
        /// Seed selecting which subarrays and columns are weak.
        seed: u64,
    },
}

impl FaultModel {
    /// A transient-fault model whose flip probability is the Monte-Carlo worst-case
    /// TRA failure probability of `node` ([`VariationModel::tra_failure_probability`]).
    pub fn tra_for_node(node: TechnologyNode, seed: u64) -> Self {
        let probability = VariationModel::for_node(node)
            .tra_failure_probability(CALIBRATION_TRIALS, CALIBRATION_SEED);
        FaultModel::Tra {
            probability,
            seed,
            node: Some(node),
        }
    }

    /// A transient-fault model with an explicit flip probability (clamped to `[0, 1]`),
    /// bypassing node calibration — how tests and benches dial in fault rates high
    /// enough to exercise detection and retry deterministically.
    pub fn tra_with_probability(probability: f64, seed: u64) -> Self {
        FaultModel::Tra {
            probability: probability.clamp(0.0, 1.0),
            seed,
            node: None,
        }
    }

    /// A persistent weak-cell map derived from `seed`.
    pub fn rowmap(seed: u64) -> Self {
        FaultModel::RowMap { seed }
    }

    /// Returns `true` when no faults are injected.
    pub fn is_off(&self) -> bool {
        matches!(self, FaultModel::Off)
    }

    /// Reads the `SIMDRAM_FAULTS` environment override, surfacing malformed values as a
    /// typed [`EnvOverrideError`] instead of panicking or silently falling back.
    /// Returns `Ok(None)` only when the variable is unset.
    ///
    /// Recognized (case-insensitive) values: `off`, `tra:<node>:<seed>` (node one of
    /// `22nm | 17nm | 14nm | 10nm | 7nm`) and `rowmap:<seed>`. This is how CI runs the
    /// whole tier-1 suite with injection armed without code changes.
    ///
    /// # Errors
    ///
    /// Returns [`EnvOverrideError`] when the variable is set but unrecognized.
    pub fn try_from_env() -> Result<Option<Self>, EnvOverrideError> {
        envopt::env_override(FAULTS_VAR, FAULTS_EXPECTED, Self::recognize)
    }

    /// Reads the `SIMDRAM_FAULTS` environment override. Returns `None` only when the
    /// variable is unset, letting the caller fall back to its configured default.
    ///
    /// # Panics
    ///
    /// Panics on a set-but-unrecognized value. The variable exists solely as a test/CI
    /// override; silently ignoring a typo would let a CI job believe it exercised the
    /// fault path while running fault-free. Callers that want a recoverable failure use
    /// [`FaultModel::try_from_env`].
    pub fn from_env() -> Option<Self> {
        Self::try_from_env().unwrap_or_else(|err| panic!("{err}"))
    }

    /// Parses one `SIMDRAM_FAULTS` override value with the shared normalization rules.
    ///
    /// # Errors
    ///
    /// Returns [`EnvOverrideError`] on anything [`FaultModel::try_from_env`] would
    /// reject.
    pub fn parse_override(raw: &str) -> Result<Self, EnvOverrideError> {
        envopt::parse_override(FAULTS_VAR, FAULTS_EXPECTED, raw, Self::recognize)
    }

    /// The pure grammar recognizer behind [`FaultModel::parse_override`]: `value` is
    /// already trimmed and lowercased; `None` means "not in the grammar".
    fn recognize(value: &str) -> Option<Self> {
        if value == "off" {
            return Some(FaultModel::Off);
        }
        if let Some(rest) = value.strip_prefix("tra:") {
            let (node_name, seed_text) = rest.split_once(':')?;
            let node = TechnologyNode::ALL
                .into_iter()
                .find(|n| n.name() == node_name)?;
            let seed = seed_text.parse().ok()?;
            return Some(FaultModel::tra_for_node(node, seed));
        }
        if let Some(seed_text) = value.strip_prefix("rowmap:") {
            let seed = seed_text.parse().ok()?;
            return Some(FaultModel::RowMap { seed });
        }
        None
    }

    /// Builds the per-subarray injection state for the subarray at device-wide linear
    /// index `subarray_index` (bank-major), or `None` when this model injects nothing
    /// there. Pure in `(self, subarray_index, columns)`.
    pub fn state_for(&self, subarray_index: usize, columns: usize) -> Option<FaultState> {
        match *self {
            FaultModel::Off => None,
            FaultModel::Tra {
                probability, seed, ..
            } => Some(FaultState {
                kind: FaultKind::Tra { probability },
                stream_seed: mix(seed ^ mix(subarray_index as u64)),
                counter: 0,
                injected: 0,
            }),
            FaultModel::RowMap { seed } => {
                let identity = mix(seed ^ mix(subarray_index as u64 ^ 0xD1E5_EA5E));
                if identity % WEAK_SUBARRAY_DENSITY != 0 || columns == 0 {
                    return None;
                }
                let mut weak_columns: Vec<u32> = (0..WEAK_COLUMNS_PER_SUBARRAY)
                    .map(|i| (mix(identity ^ (i as u64 + 1)) % columns as u64) as u32)
                    .collect();
                weak_columns.sort_unstable();
                weak_columns.dedup();
                Some(FaultState {
                    kind: FaultKind::RowMap { weak_columns },
                    stream_seed: mix(seed ^ mix(subarray_index as u64)),
                    counter: 0,
                    injected: 0,
                })
            }
        }
    }
}

/// The flavour of a subarray's installed fault stream (see [`FaultModel`]).
#[derive(Debug, Clone, PartialEq)]
enum FaultKind {
    /// Transient marginal-column flips with this probability.
    Tra {
        /// Per-TRA, per-marginal-column flip probability.
        probability: f64,
    },
    /// Fixed weak columns flipping with [`WEAK_FLIP_PROBABILITY`].
    RowMap {
        /// Sorted, deduplicated weak column indices.
        weak_columns: Vec<u32>,
    },
}

/// Per-subarray fault-injection state: the seeded stream plus the persistent TRA
/// counter that keys it (see the module docs for the determinism contract).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultState {
    kind: FaultKind,
    stream_seed: u64,
    counter: u64,
    injected: u64,
}

impl FaultState {
    /// The subarray's position in its TRA stream: the key of the *next* TRA.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Total bits flipped by this stream so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Consumes and returns the next interpreted-path TRA key. The interpreted path
    /// executes every TRA in μProgram order, so post-increment reproduces exactly the
    /// `counter_base + ordinal` keys the compiled path computes.
    pub(crate) fn take_key(&mut self) -> u64 {
        let key = self.counter;
        self.counter += 1;
        key
    }

    /// Advances the stream past a compiled block's `tra_total` TRAs (including any the
    /// compiler elided), keeping the stream position mode-independent.
    pub(crate) fn advance(&mut self, tra_count: u64) {
        self.counter += tra_count;
    }

    /// Injects this stream's faults for the TRA at stream position `key` into the
    /// freshly latched majority `sense` words. `is_marginal(col)` reports whether the
    /// three source cells of `col` split 2-vs-1; transient faults only land there.
    pub(crate) fn corrupt_tra<F>(
        &mut self,
        key: u64,
        sense: &mut [u64],
        columns: usize,
        is_marginal: F,
    ) where
        F: Fn(usize) -> bool,
    {
        match &self.kind {
            FaultKind::Tra { probability } => {
                let p = *probability;
                if p <= 0.0 || columns == 0 {
                    return;
                }
                // Geometric-skip sampling: draw the gap to the next *candidate* column
                // directly instead of one coin per column, so realistic (tiny) node
                // probabilities cost ~O(faults), not O(columns), per TRA.
                let stream = mix(self.stream_seed ^ mix(key));
                let mut draws = 0u64;
                let mut col = 0usize;
                loop {
                    let gap = geometric_gap(mix(stream ^ draws), p);
                    draws += 1;
                    if gap >= (columns - col) as u64 {
                        return;
                    }
                    col += gap as usize;
                    if is_marginal(col) {
                        sense[col / 64] ^= 1u64 << (col % 64);
                        self.injected += 1;
                    }
                    col += 1;
                    if col >= columns {
                        return;
                    }
                }
            }
            FaultKind::RowMap { weak_columns } => {
                let threshold = (WEAK_FLIP_PROBABILITY * u64::MAX as f64) as u64;
                for &weak in weak_columns {
                    let col = weak as usize;
                    if col >= columns {
                        continue;
                    }
                    let coin = mix(self.stream_seed ^ mix(key) ^ ((weak as u64 + 1) << 32));
                    if coin <= threshold {
                        sense[col / 64] ^= 1u64 << (col % 64);
                        self.injected += 1;
                    }
                }
            }
        }
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed keyed hash. Fault streams need keyed
/// random access (subarray × stream position × column), which a sequential PRNG cannot
/// give; a statistical-quality mixer is exactly enough for simulation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps one uniform draw to the number of Bernoulli(`p`) failures skipped before the
/// next success (the geometric distribution's gap), saturating at `u64::MAX`.
fn geometric_gap(draw: u64, p: f64) -> u64 {
    if p >= 1.0 {
        return 0;
    }
    // 53 uniform mantissa bits in [0, 1); guard against ln(0).
    let u = ((draw >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    let gap = (1.0 - u).ln() / (1.0 - p).ln();
    if gap >= u64::MAX as f64 {
        u64::MAX
    } else {
        gap as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_the_default_and_installs_nothing() {
        assert!(FaultModel::default().is_off());
        assert!(FaultModel::Off.state_for(3, 256).is_none());
    }

    #[test]
    fn env_override_parsing() {
        assert!(FaultModel::parse_override("off").unwrap().is_off());
        assert!(FaultModel::parse_override(" OFF ").unwrap().is_off());
        match FaultModel::parse_override("tra:7nm:42").unwrap() {
            FaultModel::Tra {
                probability,
                seed,
                node,
            } => {
                assert_eq!(seed, 42);
                assert_eq!(node, Some(TechnologyNode::Nm7));
                assert!((0.0..=1.0).contains(&probability));
            }
            other => panic!("expected Tra, got {other:?}"),
        }
        assert_eq!(
            FaultModel::parse_override("rowmap:9"),
            Ok(FaultModel::RowMap { seed: 9 })
        );
    }

    #[test]
    fn env_override_rejects_typos_with_a_typed_error() {
        let err = FaultModel::parse_override("tra").unwrap_err();
        assert_eq!(err.var, "SIMDRAM_FAULTS");
        assert_eq!(err.value, "tra");
        assert!(err.expected.contains("tra:<"));
    }

    #[test]
    fn env_override_rejects_unknown_node_with_a_typed_error() {
        let err = FaultModel::parse_override("tra:5nm:1").unwrap_err();
        assert_eq!(err.value, "tra:5nm:1");
        assert!(err.to_string().contains("SIMDRAM_FAULTS"));
    }

    #[test]
    fn env_override_rejects_bad_seed_with_a_typed_error() {
        assert!(FaultModel::parse_override("rowmap:abc").is_err());
        assert!(FaultModel::parse_override("tra:7nm:-3").is_err());
        assert!(FaultModel::parse_override("tra:7nm:").is_err());
    }

    #[test]
    fn node_calibration_matches_the_variation_model() {
        let model = FaultModel::tra_for_node(TechnologyNode::Nm7, 1);
        let expected = VariationModel::for_node(TechnologyNode::Nm7)
            .tra_failure_probability(CALIBRATION_TRIALS, CALIBRATION_SEED);
        match model {
            FaultModel::Tra { probability, .. } => assert_eq!(probability, expected),
            other => panic!("expected Tra, got {other:?}"),
        }
    }

    #[test]
    fn tra_injection_is_deterministic_and_marginal_only() {
        let model = FaultModel::tra_with_probability(0.5, 11);
        let columns = 192;
        let mut a = model.state_for(0, columns).unwrap();
        let mut b = model.state_for(0, columns).unwrap();
        let mut sense_a = vec![0u64; 3];
        let mut sense_b = vec![0u64; 3];
        // Only even columns marginal: no odd column may ever flip.
        a.corrupt_tra(0, &mut sense_a, columns, |c| c % 2 == 0);
        b.corrupt_tra(0, &mut sense_b, columns, |c| c % 2 == 0);
        assert_eq!(sense_a, sense_b);
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0, "p=0.5 over 96 marginal columns must flip");
        for word in &sense_a {
            assert_eq!(word & 0xAAAA_AAAA_AAAA_AAAA, 0, "odd column flipped");
        }
        // A different stream position draws a different pattern.
        let mut later = vec![0u64; 3];
        a.corrupt_tra(1, &mut later, columns, |c| c % 2 == 0);
        assert_ne!(later, sense_a);
    }

    #[test]
    fn different_subarrays_draw_independent_streams() {
        let model = FaultModel::tra_with_probability(0.5, 11);
        let columns = 256;
        let mut s0 = model.state_for(0, columns).unwrap();
        let mut s1 = model.state_for(1, columns).unwrap();
        let mut sense0 = vec![0u64; 4];
        let mut sense1 = vec![0u64; 4];
        s0.corrupt_tra(0, &mut sense0, columns, |_| true);
        s1.corrupt_tra(0, &mut sense1, columns, |_| true);
        assert_ne!(sense0, sense1);
    }

    #[test]
    fn interpreted_and_compiled_key_bookkeeping_agree() {
        let model = FaultModel::tra_with_probability(0.1, 3);
        let mut interp = model.state_for(5, 64).unwrap();
        let mut compiled = model.state_for(5, 64).unwrap();
        // Interpreted: three TRAs consume keys 0, 1, 2.
        assert_eq!(interp.take_key(), 0);
        assert_eq!(interp.take_key(), 1);
        assert_eq!(interp.take_key(), 2);
        // Compiled: the block executes ordinals {0, 2} (ordinal 1 elided) and then
        // advances by the full TRA total; the streams end at the same position.
        compiled.advance(3);
        assert_eq!(interp.counter(), compiled.counter());
    }

    #[test]
    fn rowmap_selects_a_seeded_subset_with_stable_weak_columns() {
        let model = FaultModel::rowmap(7);
        let columns = 256;
        let states: Vec<Option<FaultState>> =
            (0..64).map(|i| model.state_for(i, columns)).collect();
        let weak = states.iter().flatten().count();
        assert!(weak > 0, "some subarrays must be weak");
        assert!(weak < 64, "not every subarray may be weak");
        // Same model, same indices → identical maps.
        let again: Vec<Option<FaultState>> = (0..64).map(|i| model.state_for(i, columns)).collect();
        assert_eq!(states, again);
        // Weak columns keep flipping across stream positions (persistent, not
        // transient): over many TRAs each weak column must flip at least once.
        let mut state = states.into_iter().flatten().next().unwrap();
        let mut flipped = vec![0u64; 4];
        for key in 0..64 {
            state.corrupt_tra(key, &mut flipped, columns, |_| true);
        }
        assert!(state.injected() > 32, "weak columns flip at ~0.75 per TRA");
    }

    #[test]
    fn geometric_gap_scales_with_probability() {
        // At p=1 every column is a candidate; at tiny p the expected gap is ~1/p.
        assert_eq!(geometric_gap(12345, 1.0), 0);
        let p = 1e-6;
        let mean: f64 = (0..1000)
            .map(|i| geometric_gap(mix(i), p) as f64)
            .sum::<f64>()
            / 1000.0;
        assert!(
            mean > 0.2 / p && mean < 5.0 / p,
            "mean gap {mean} vs 1/p {}",
            1.0 / p
        );
    }
}
