//! Pre-resolved word-level row operations: the execution format of compiled μPrograms.
//!
//! The interpreted μProgram path re-resolves every symbolic row, re-validates bounds and
//! records one trace entry per command. A [`RowOpBlock`] is the result of doing all of
//! that work **once**, ahead of time: each operation names its physical storage directly
//! (a `(region, offset)` pair for data rows, a fixed index for B-group rows), the block
//! carries the per-region row extents so the executing subarray can bounds-check the
//! whole program in one pass, and the trace accounting is pre-aggregated into a
//! [`TraceAggregate`] applied in one shot.
//!
//! Data rows are addressed relative to a small set of *regions* whose base rows the
//! caller supplies at [`crate::Subarray::apply_block`] time. This keeps a block reusable
//! across row bindings: the μProgram compiler lowers symbolic operand/output/temporary
//! rows to region-relative references, and one compiled block serves every subarray and
//! every binding of the same program.

use crate::command::{rowtag, TraceAggregate};
use crate::error::{DramError, Result};
use crate::subarray::BGroupRow;

/// The row-address tag of one aggregated command, before the data-region bases are
/// known: either a tag fixed at compile time (B-group rows, TRA triples, constants) or
/// a data row resolved against the caller's base table at apply time.
///
/// One template per *source command* (not per lowered op — elided commands keep their
/// address), so a block applied with history can charge the exact
/// [`crate::DramCommand::row`] sequence the interpreted path records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowTemplate {
    /// A concrete [`rowtag`] known at compile time.
    Fixed(u32),
    /// Data row `bases[region] + offset`, tagged at apply time.
    Data {
        /// Index into the caller's region base table.
        region: u8,
        /// Row offset within the region.
        offset: u32,
    },
}

/// A pre-resolved reference to a row's physical storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowRef {
    /// Data row `bases[region] + offset`, where `bases` is supplied at apply time.
    Data {
        /// Index into the caller's region base table.
        region: u8,
        /// Row offset within the region.
        offset: u32,
    },
    /// Designated TRA row `T0`–`T3`.
    T(u8),
    /// Dual-contact cell storage `DCC0`/`DCC1` (the true cell, not a wordline).
    Dcc(u8),
}

/// A write destination: a physical row plus whether the value is driven through a negated
/// wordline (storing the complement, as the dual-contact cells' `N` wordlines do).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRef {
    /// The row written.
    pub row: RowRef,
    /// `true` when the write drives the complement into the cell.
    pub negated: bool,
}

/// A read operand of a [`RowOp::MajDirect`]: a physical row (optionally read through a
/// negated wordline) or a hard-wired constant.
///
/// The μProgram compiler's copy-propagation pass resolves TRA operands through the
/// elided copies that would have staged them into the B-group, so a majority can read
/// any row the staging copy read — including data rows — directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcRef {
    /// A physical row, complemented when `negated`.
    Row {
        /// The row read.
        row: RowRef,
        /// `true` when the read drives the complement (a negated wordline).
        negated: bool,
    },
    /// A hard-wired constant (C0/C1 or an elided constant fill).
    Const(bool),
}

/// One pre-resolved word-level row operation.
///
/// Each variant is the specialized form of one DRAM command's data movement, with every
/// address decision (negated wordlines, constant rows, same-cell copies, the fused-TRA
/// eligibility test) already taken at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOp {
    /// Word-level copy `dst ← src` (an `AAP` between distinct rows).
    Copy {
        /// Source row.
        src: RowRef,
        /// Destination row.
        dst: RowRef,
    },
    /// Word-level complemented copy `dst ← ¬src` (an `AAP` through exactly one negated
    /// wordline).
    CopyInv {
        /// Source row.
        src: RowRef,
        /// Destination row.
        dst: RowRef,
    },
    /// Fill `dst` with a constant (an `AAP` whose source is a hard-wired control row).
    Fill {
        /// Destination row.
        dst: RowRef,
        /// The driven value.
        value: bool,
    },
    /// In-place complement of `dst` (an `AAP` between the two wordlines of one
    /// dual-contact cell).
    Invert {
        /// The row complemented.
        dst: RowRef,
    },
    /// An `AAP` that moves no data (same cell driven through wordlines of one polarity).
    Nop,
    /// Fused triple-row majority over three distinct plain `T` rows, restored into the
    /// operands and optionally copied into a data row — the fast path the μProgram
    /// generator's TRAs overwhelmingly take.
    MajFused {
        /// The three distinct `T`-row indices.
        t: [u8; 3],
        /// Optional destination data row (the `AAP` variant of the TRA).
        dst: Option<RowRef>,
    },
    /// General triple-row majority over arbitrary distinct B-group rows (negated
    /// wordlines and constant rows permitted), with an optional extra destination.
    Maj {
        /// First activated row.
        a: BGroupRow,
        /// Second activated row.
        b: BGroupRow,
        /// Third activated row.
        c: BGroupRow,
        /// Optional destination (the `AAP` variant of the TRA).
        dst: Option<WriteRef>,
    },
    /// Copy-propagated triple-row majority: the operands read their *original* sources
    /// (any rows or constants — the staging copies into the B-group were elided by the
    /// compiler) and the result is written to at most one destination; the B-group
    /// restorations the hardware performs are deferred to the block's final
    /// materialization ops. Operands may alias (`maj(x, x, y) = x`).
    MajDirect {
        /// The three resolved operands.
        srcs: [SrcRef; 3],
        /// Optional destination of the majority value.
        dst: Option<WriteRef>,
    },
}

impl RowOp {
    /// Every row reference this operation touches, for validation.
    fn row_refs(&self) -> impl Iterator<Item = RowRef> {
        let src_row = |s: SrcRef| match s {
            SrcRef::Row { row, .. } => Some(row),
            SrcRef::Const(_) => None,
        };
        let refs: [Option<RowRef>; 4] = match *self {
            RowOp::Copy { src, dst } | RowOp::CopyInv { src, dst } => {
                [Some(src), Some(dst), None, None]
            }
            RowOp::Fill { dst, .. } | RowOp::Invert { dst } => [Some(dst), None, None, None],
            RowOp::Nop => [None; 4],
            RowOp::MajFused { dst, .. } => [dst, None, None, None],
            RowOp::Maj { dst, .. } => [dst.map(|w| w.row), None, None, None],
            RowOp::MajDirect { srcs, dst } => [
                src_row(srcs[0]),
                src_row(srcs[1]),
                src_row(srcs[2]),
                dst.map(|w| w.row),
            ],
        };
        refs.into_iter().flatten()
    }
}

/// A compiled, binding-independent sequence of [`RowOp`]s plus its pre-aggregated trace
/// accounting.
///
/// Blocks are validated at construction (see [`RowOpBlock::new`]); applying one via
/// [`crate::Subarray::apply_block`] then only needs a single per-region bounds check
/// before running the specialized word-level loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RowOpBlock {
    ops: Vec<RowOp>,
    /// Per-region row extent: `extents[r]` rows starting at `bases[r]` are touched.
    region_extents: Vec<u32>,
    aggregate: TraceAggregate,
    /// Source-μProgram TRA ordinal of each majority op, in op order (see
    /// [`RowOpBlock::maj_ordinals`]).
    maj_ordinals: Vec<u32>,
    /// TRAs in the source command stream, including any the compiler elided.
    tra_total: u32,
    /// Row-address template of each aggregated command, in source-command order; empty
    /// when the compiler did not attach addresses (every command then tags
    /// [`rowtag::UNKNOWN`]).
    row_tags: Vec<RowTemplate>,
}

impl RowOpBlock {
    /// Builds a block over `regions` data-row regions, validating every operation.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if an operation references a region `>=
    /// regions`, an out-of-range `T`/`DCC` index, or a `MajFused` destination that is not
    /// a data row, if the fused `T` indices are not distinct, or if the aggregate
    /// accounts fewer commands than there are operations (copy propagation only ever
    /// *removes* data movement, so a block never has more ops than the command sequence
    /// it was compiled from). Returns [`DramError::DuplicateTraRow`] for a `Maj` over
    /// non-distinct rows.
    pub fn new(ops: Vec<RowOp>, regions: usize, aggregate: TraceAggregate) -> Result<Self> {
        if aggregate.len() < ops.len() {
            return Err(DramError::InvalidConfig(format!(
                "row-op block has {} ops but its aggregate accounts only {} commands",
                ops.len(),
                aggregate.len()
            )));
        }
        let mut region_extents = vec![0u32; regions];
        for op in &ops {
            for row in op.row_refs() {
                match row {
                    RowRef::Data { region, offset } => {
                        let extent = region_extents.get_mut(region as usize).ok_or_else(|| {
                            DramError::InvalidConfig(format!(
                                "row-op references region {region} of a {regions}-region block"
                            ))
                        })?;
                        *extent = (*extent).max(offset + 1);
                    }
                    RowRef::T(i) if i >= 4 => {
                        return Err(DramError::InvalidConfig(format!(
                            "row-op references T{i}; the B-group has T0..=T3"
                        )))
                    }
                    RowRef::Dcc(i) if i >= 2 => {
                        return Err(DramError::InvalidConfig(format!(
                            "row-op references DCC{i}; the B-group has DCC0/DCC1"
                        )))
                    }
                    RowRef::T(_) | RowRef::Dcc(_) => {}
                }
            }
            match *op {
                RowOp::MajFused { t, dst } => {
                    if t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
                        return Err(DramError::DuplicateTraRow);
                    }
                    if let Some(i) = t.iter().find(|&&i| i >= 4) {
                        return Err(DramError::InvalidConfig(format!(
                            "fused TRA references T{i}; the B-group has T0..=T3"
                        )));
                    }
                    if !matches!(dst, None | Some(RowRef::Data { .. })) {
                        return Err(DramError::InvalidConfig(
                            "fused TRA destinations must be data rows".into(),
                        ));
                    }
                }
                RowOp::Maj { a, b, c, .. } if a == b || b == c || a == c => {
                    return Err(DramError::DuplicateTraRow);
                }
                _ => {}
            }
        }
        // Default TRA bookkeeping: every majority op is its own TRA, numbered in op
        // order. Compilers that elide TRAs override this via `with_tra_ordinals`.
        let maj_ordinals: Vec<u32> = (0..count_majority_ops(&ops) as u32).collect();
        let tra_total = maj_ordinals.len() as u32;
        Ok(RowOpBlock {
            ops,
            region_extents,
            aggregate,
            maj_ordinals,
            tra_total,
            row_tags: Vec::new(),
        })
    }

    /// Attaches the row-address template of every aggregated command, in
    /// source-command order, so applications that retain per-command history can
    /// charge the exact [`crate::DramCommand::row`] tags the interpreted path records
    /// (see [`RowOpBlock::resolve_row_tags`]).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if `tags` does not have one entry per
    /// aggregated command, or a [`RowTemplate::Data`] template references a region the
    /// block does not address.
    pub fn with_row_tags(mut self, tags: Vec<RowTemplate>) -> Result<Self> {
        if tags.len() != self.aggregate.len() {
            return Err(DramError::InvalidConfig(format!(
                "block aggregates {} commands but has {} row tags",
                self.aggregate.len(),
                tags.len()
            )));
        }
        let regions = self.region_extents.len();
        for tag in &tags {
            if let RowTemplate::Data { region, .. } = *tag {
                if region as usize >= regions {
                    return Err(DramError::InvalidConfig(format!(
                        "row tag references region {region} of a {regions}-region block"
                    )));
                }
            }
        }
        self.row_tags = tags;
        Ok(self)
    }

    /// Overrides the block's TRA bookkeeping with the source μProgram's: `ordinals[i]`
    /// is the μProgram TRA ordinal realized by the block's `i`-th majority op, and
    /// `tra_total` the μProgram's full TRA count (elided TRAs included). Fault
    /// injection keys on these so the compiled path draws exactly the interpreted
    /// path's fault stream (see [`crate::FaultState`]).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if `ordinals` does not have one entry per
    /// majority op, is not strictly increasing, or references an ordinal `>=
    /// tra_total`.
    pub fn with_tra_ordinals(mut self, ordinals: Vec<u32>, tra_total: u32) -> Result<Self> {
        let majority_ops = count_majority_ops(&self.ops);
        if ordinals.len() != majority_ops {
            return Err(DramError::InvalidConfig(format!(
                "block has {majority_ops} majority ops but {} TRA ordinals",
                ordinals.len()
            )));
        }
        if !ordinals.windows(2).all(|w| w[0] < w[1]) {
            return Err(DramError::InvalidConfig(
                "TRA ordinals must be strictly increasing".into(),
            ));
        }
        if let Some(&last) = ordinals.last() {
            if last >= tra_total {
                return Err(DramError::InvalidConfig(format!(
                    "TRA ordinal {last} out of range for a {tra_total}-TRA source program"
                )));
            }
        }
        self.maj_ordinals = ordinals;
        self.tra_total = tra_total;
        Ok(self)
    }

    /// The operations, in issue order.
    pub fn ops(&self) -> &[RowOp] {
        &self.ops
    }

    /// Source-μProgram TRA ordinal of each majority op ([`RowOp::MajFused`],
    /// [`RowOp::Maj`], [`RowOp::MajDirect`]), in op order.
    pub fn maj_ordinals(&self) -> &[u32] {
        &self.maj_ordinals
    }

    /// TRAs in the block's source command stream — `>= maj_ordinals().len()` whenever
    /// the compiler elided dead TRAs.
    pub fn tra_total(&self) -> u32 {
        self.tra_total
    }

    /// Number of data-row regions the block addresses.
    pub fn regions(&self) -> usize {
        self.region_extents.len()
    }

    /// Per-region row extents: region `r` touches rows `bases[r] .. bases[r] +
    /// extents[r]`.
    pub fn region_extents(&self) -> &[u32] {
        &self.region_extents
    }

    /// The pre-aggregated trace accounting of one application of the block.
    pub fn aggregate(&self) -> &TraceAggregate {
        &self.aggregate
    }

    /// The row-address templates attached via [`RowOpBlock::with_row_tags`] — empty
    /// when the block carries no addresses.
    pub fn row_tags(&self) -> &[RowTemplate] {
        &self.row_tags
    }

    /// Resolves the row tag of every aggregated command against the caller's region
    /// base table (the same `bases` passed to [`crate::Subarray::apply_block`]).
    ///
    /// Blocks without attached templates resolve to all-[`rowtag::UNKNOWN`], matching
    /// the addressless accounting of earlier releases.
    pub fn resolve_row_tags(&self, bases: &[usize]) -> Vec<u32> {
        if self.row_tags.is_empty() {
            return vec![rowtag::UNKNOWN; self.aggregate.len()];
        }
        self.row_tags
            .iter()
            .map(|tag| match *tag {
                RowTemplate::Fixed(t) => t,
                RowTemplate::Data { region, offset } => {
                    rowtag::data(bases[region as usize] + offset as usize)
                }
            })
            .collect()
    }
}

/// Number of majority (TRA-realizing) operations in `ops`.
fn count_majority_ops(ops: &[RowOp]) -> usize {
    ops.iter()
        .filter(|op| {
            matches!(
                op,
                RowOp::MajFused { .. } | RowOp::Maj { .. } | RowOp::MajDirect { .. }
            )
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{CommandCosts, DramCommand};
    use crate::config::DramConfig;

    fn aggregate_of(n: usize) -> TraceAggregate {
        let costs = CommandCosts::new(&DramConfig::tiny());
        TraceAggregate::from_commands(
            std::iter::repeat_with(|| costs.aap().clone())
                .take(n)
                .collect::<Vec<DramCommand>>(),
        )
    }

    fn data(region: u8, offset: u32) -> RowRef {
        RowRef::Data { region, offset }
    }

    #[test]
    fn block_computes_region_extents() {
        let ops = vec![
            RowOp::Copy {
                src: data(0, 3),
                dst: RowRef::T(0),
            },
            RowOp::Copy {
                src: data(0, 1),
                dst: data(1, 7),
            },
        ];
        let block = RowOpBlock::new(ops, 3, aggregate_of(2)).unwrap();
        assert_eq!(block.region_extents(), &[4, 8, 0]);
        assert_eq!(block.regions(), 3);
        assert_eq!(block.ops().len(), 2);
    }

    #[test]
    fn block_rejects_bad_references() {
        assert!(
            RowOpBlock::new(vec![RowOp::Invert { dst: data(5, 0) }], 2, aggregate_of(1)).is_err()
        );
        assert!(RowOpBlock::new(
            vec![RowOp::Copy {
                src: RowRef::T(4),
                dst: data(0, 0)
            }],
            1,
            aggregate_of(1)
        )
        .is_err());
        assert_eq!(
            RowOpBlock::new(
                vec![RowOp::MajFused {
                    t: [0, 0, 1],
                    dst: None
                }],
                1,
                aggregate_of(1)
            ),
            Err(DramError::DuplicateTraRow)
        );
        // The aggregate may account more commands than there are ops (copy propagation
        // elides data movement) but never fewer.
        assert!(RowOpBlock::new(vec![RowOp::Nop], 1, aggregate_of(2)).is_ok());
        assert!(RowOpBlock::new(vec![RowOp::Nop, RowOp::Nop], 1, aggregate_of(1)).is_err());
    }

    #[test]
    fn maj_direct_sources_contribute_to_extents_and_may_alias() {
        let ops = vec![RowOp::MajDirect {
            srcs: [
                SrcRef::Row {
                    row: data(0, 9),
                    negated: true,
                },
                SrcRef::Row {
                    row: data(0, 9),
                    negated: false,
                },
                SrcRef::Const(true),
            ],
            dst: Some(WriteRef {
                row: data(1, 2),
                negated: false,
            }),
        }];
        let block = RowOpBlock::new(ops, 2, aggregate_of(1)).unwrap();
        assert_eq!(block.region_extents(), &[10, 3]);
    }

    #[test]
    fn row_tags_resolve_against_region_bases() {
        let ops = vec![
            RowOp::Copy {
                src: data(0, 3),
                dst: RowRef::T(0),
            },
            RowOp::Copy {
                src: data(1, 1),
                dst: data(1, 2),
            },
        ];
        let block = RowOpBlock::new(ops, 2, aggregate_of(2)).unwrap();
        // Without templates, every command tags UNKNOWN.
        assert_eq!(
            block.resolve_row_tags(&[10, 40]),
            vec![rowtag::UNKNOWN, rowtag::UNKNOWN]
        );
        let block = block
            .with_row_tags(vec![
                RowTemplate::Data {
                    region: 0,
                    offset: 3,
                },
                RowTemplate::Fixed(rowtag::tra(0, 1, 2)),
            ])
            .unwrap();
        assert_eq!(
            block.resolve_row_tags(&[10, 40]),
            vec![rowtag::data(13), rowtag::tra(0, 1, 2)]
        );
    }

    #[test]
    fn row_tags_are_validated() {
        let block = RowOpBlock::new(vec![RowOp::Nop], 1, aggregate_of(2)).unwrap();
        // One tag per aggregated command, not per op.
        assert!(block
            .clone()
            .with_row_tags(vec![RowTemplate::Fixed(0)])
            .is_err());
        assert!(block
            .clone()
            .with_row_tags(vec![
                RowTemplate::Data {
                    region: 3,
                    offset: 0
                },
                RowTemplate::Fixed(0)
            ])
            .is_err());
        assert!(block
            .with_row_tags(vec![RowTemplate::Fixed(0), RowTemplate::Fixed(1)])
            .is_ok());
    }
}
