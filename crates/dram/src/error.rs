//! Error type for the DRAM substrate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, DramError>;

/// Errors raised by the DRAM substrate simulator.
///
/// All public fallible operations in this crate return [`DramError`]; the variants carry
/// enough context to diagnose which structural limit or addressing rule was violated.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// A row index addressed a row outside the subarray.
    RowOutOfRange {
        /// The offending row index.
        row: usize,
        /// Number of data rows in the subarray.
        rows: usize,
    },
    /// A column index addressed a bit outside the row.
    ColumnOutOfRange {
        /// The offending column index.
        column: usize,
        /// Number of columns (bitlines) per row.
        columns: usize,
    },
    /// A subarray index addressed a subarray outside the bank.
    SubarrayOutOfRange {
        /// The offending subarray index.
        subarray: usize,
        /// Number of subarrays per bank.
        subarrays: usize,
    },
    /// A bank index addressed a bank outside the device.
    BankOutOfRange {
        /// The offending bank index.
        bank: usize,
        /// Number of banks in the device.
        banks: usize,
    },
    /// Two rows involved in the same command must have the same width.
    WidthMismatch {
        /// Width of the first operand in bits.
        left: usize,
        /// Width of the second operand in bits.
        right: usize,
    },
    /// A triple-row activation named the same B-group row more than once.
    DuplicateTraRow,
    /// A disjoint-borrow request named the same subarray more than once.
    ///
    /// Returned by [`crate::DramDevice::subarrays_mut`] and [`crate::Bank::subarrays_mut`],
    /// which hand out one `&mut` per requested subarray and therefore require every
    /// coordinate to be distinct.
    AliasedSubarray {
        /// Bank index of the repeated coordinate, when known. Device-level requests carry
        /// `Some(bank)`; a [`crate::Bank`] does not know its own position in the device,
        /// so bank-local requests carry `None`.
        bank: Option<usize>,
        /// Subarray index of the repeated coordinate.
        subarray: usize,
    },
    /// A command that requires an open row was issued while the subarray was precharged.
    NoOpenRow,
    /// A configuration value was invalid (zero-sized geometry, non-power-of-two row size, …).
    InvalidConfig(String),
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::RowOutOfRange { row, rows } => {
                write!(
                    f,
                    "row index {row} out of range (subarray has {rows} data rows)"
                )
            }
            DramError::ColumnOutOfRange { column, columns } => {
                write!(
                    f,
                    "column index {column} out of range (row has {columns} columns)"
                )
            }
            DramError::SubarrayOutOfRange {
                subarray,
                subarrays,
            } => {
                write!(
                    f,
                    "subarray index {subarray} out of range (bank has {subarrays} subarrays)"
                )
            }
            DramError::BankOutOfRange { bank, banks } => {
                write!(
                    f,
                    "bank index {bank} out of range (device has {banks} banks)"
                )
            }
            DramError::WidthMismatch { left, right } => {
                write!(f, "row width mismatch: {left} bits vs {right} bits")
            }
            DramError::AliasedSubarray {
                bank: Some(bank),
                subarray,
            } => {
                write!(
                    f,
                    "subarray (bank {bank}, subarray {subarray}) requested more than once in a disjoint borrow"
                )
            }
            DramError::AliasedSubarray {
                bank: None,
                subarray,
            } => {
                write!(
                    f,
                    "subarray {subarray} requested more than once in a disjoint borrow"
                )
            }
            DramError::DuplicateTraRow => {
                write!(
                    f,
                    "triple-row activation requires three distinct B-group rows"
                )
            }
            DramError::NoOpenRow => write!(
                f,
                "command requires an open row but the subarray is precharged"
            ),
            DramError::InvalidConfig(msg) => write!(f, "invalid DRAM configuration: {msg}"),
        }
    }
}

impl std::error::Error for DramError {}
