//! Aggregated DRAM command statistics.

use std::collections::BTreeMap;
use std::fmt;

use crate::command::{CommandKind, CommandTrace};

/// Device-level aggregation of command counts, latency and energy.
///
/// Produced by [`crate::DramDevice::stats`] and by higher layers that account for
/// μProgram execution analytically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceStats {
    counts: BTreeMap<&'static str, usize>,
    total_commands: usize,
    total_latency_ns: f64,
    total_energy_nj: f64,
    injected_faults: u64,
}

impl DeviceStats {
    /// Creates an empty statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs every command of a trace into the aggregate.
    ///
    /// Uses the trace's incrementally maintained aggregates (per-kind counts and
    /// latency/energy totals), so this is O(cost-table size), not O(commands), and it
    /// covers commands whose per-command history was drained.
    pub fn absorb_trace(&mut self, trace: &CommandTrace) {
        for (kind, count) in trace.kind_counts() {
            *self.counts.entry(kind_name(kind)).or_insert(0) += count;
        }
        self.total_commands += trace.len();
        self.total_latency_ns += trace.total_latency_ns();
        self.total_energy_nj += trace.total_energy_nj();
    }

    /// Number of commands of the given kind.
    pub fn count(&self, kind: CommandKind) -> usize {
        self.counts.get(kind_name(kind)).copied().unwrap_or(0)
    }

    /// Total number of commands of any kind.
    pub fn total_commands(&self) -> usize {
        self.total_commands
    }

    /// Sum of command latencies in nanoseconds (sequential issue assumption).
    pub fn total_latency_ns(&self) -> f64 {
        self.total_latency_ns
    }

    /// Sum of command energies in nanojoules.
    pub fn total_energy_nj(&self) -> f64 {
        self.total_energy_nj
    }

    /// Sum of command energies in picojoules (the unit the paper's per-bbop energy
    /// figures and the `simdram-bench` JSON reports use).
    pub fn total_energy_pj(&self) -> f64 {
        self.total_energy_nj * 1e3
    }

    /// Adds `n` injected-fault bit flips to the aggregate (see
    /// [`crate::Subarray::faults_injected`]).
    pub fn add_injected_faults(&mut self, n: u64) {
        self.injected_faults += n;
    }

    /// Total bits flipped by fault injection (0 with [`crate::FaultModel::Off`]).
    pub fn injected_faults(&self) -> u64 {
        self.injected_faults
    }

    /// Merges another statistics record into this one.
    pub fn merge(&mut self, other: &DeviceStats) {
        for (k, v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        self.total_commands += other.total_commands;
        self.total_latency_ns += other.total_latency_ns;
        self.total_energy_nj += other.total_energy_nj;
        self.injected_faults += other.injected_faults;
    }
}

impl fmt::Display for DeviceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DRAM command statistics:")?;
        for (kind, count) in &self.counts {
            writeln!(f, "  {kind:<8} {count}")?;
        }
        writeln!(f, "  total commands: {}", self.total_commands)?;
        writeln!(f, "  total latency : {:.1} ns", self.total_latency_ns)?;
        write!(f, "  total energy  : {:.1} nJ", self.total_energy_nj)?;
        if self.injected_faults > 0 {
            write!(f, "\n  injected faults: {}", self.injected_faults)?;
        }
        Ok(())
    }
}

fn kind_name(kind: CommandKind) -> &'static str {
    match kind {
        CommandKind::ActivatePrecharge => "AP",
        CommandKind::TripleRowActivate => "AP(TRA)",
        CommandKind::ActivateActivatePrecharge => "AAP",
        CommandKind::Read => "RD",
        CommandKind::Write => "WR",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::DramCommand;

    fn trace_with(kinds: &[CommandKind]) -> CommandTrace {
        let mut t = CommandTrace::new();
        for &kind in kinds {
            t.push(DramCommand {
                kind,
                latency_ns: 5.0,
                energy_nj: 1.0,
                row: crate::command::rowtag::UNKNOWN,
            });
        }
        t
    }

    #[test]
    fn absorb_counts_by_kind() {
        let mut stats = DeviceStats::new();
        stats.absorb_trace(&trace_with(&[
            CommandKind::ActivateActivatePrecharge,
            CommandKind::ActivateActivatePrecharge,
            CommandKind::TripleRowActivate,
        ]));
        assert_eq!(stats.count(CommandKind::ActivateActivatePrecharge), 2);
        assert_eq!(stats.count(CommandKind::TripleRowActivate), 1);
        assert_eq!(stats.count(CommandKind::Read), 0);
        assert_eq!(stats.total_commands(), 3);
        assert!((stats.total_latency_ns() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = DeviceStats::new();
        a.absorb_trace(&trace_with(&[CommandKind::Read]));
        let mut b = DeviceStats::new();
        b.absorb_trace(&trace_with(&[CommandKind::Read, CommandKind::Write]));
        a.merge(&b);
        assert_eq!(a.count(CommandKind::Read), 2);
        assert_eq!(a.count(CommandKind::Write), 1);
        assert_eq!(a.total_commands(), 3);
    }

    #[test]
    fn display_contains_totals() {
        let mut stats = DeviceStats::new();
        stats.absorb_trace(&trace_with(&[CommandKind::Write]));
        let text = stats.to_string();
        assert!(text.contains("total commands: 1"));
        assert!(text.contains("WR"));
    }
}
