//! Packed bit-vector representation of a DRAM row.
//!
//! A DRAM row in this simulator is a dense bit vector: one bit per bitline (column). The
//! default SIMDRAM configuration uses 8 KiB rows, i.e. 65,536 bitlines, so a row is 1,024
//! `u64` words. All in-DRAM compute primitives (triple-row activation, dual-contact-cell
//! negation, RowClone copies) are bulk bitwise operations over whole rows, which is exactly
//! what makes processing-using-DRAM massively parallel: every column is an independent SIMD
//! lane.

use std::fmt;

use crate::error::{DramError, Result};

/// A packed bit vector with one bit per DRAM column (bitline).
///
/// `BitRow` is the fundamental data container of the substrate: DRAM rows, sense-amplifier
/// state and SIMD lane masks are all `BitRow`s. Bits beyond `len` inside the last word are
/// kept at zero by every operation so that [`BitRow::count_ones`] and equality behave
/// intuitively.
///
/// # Examples
///
/// ```
/// use simdram_dram::BitRow;
///
/// let a = BitRow::splat_word(0b1010, 128);
/// let b = BitRow::splat_word(0b0110, 128);
/// let c = BitRow::zeros(128);
/// // Majority of (a, b, 0) is AND(a, b).
/// assert_eq!(BitRow::majority(&a, &b, &c).unwrap(), a.and(&b).unwrap());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitRow {
    words: Vec<u64>,
    len: usize,
}

impl BitRow {
    /// Creates a row of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitRow {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a row of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut row = BitRow {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        row.mask_tail();
        row
    }

    /// Creates a row whose every 64-bit word equals `word` (the last word is truncated to
    /// the row length).
    ///
    /// This is convenient for building repetitive test patterns.
    pub fn splat_word(word: u64, len: usize) -> Self {
        let mut row = BitRow {
            words: vec![word; len.div_ceil(64)],
            len,
        };
        row.mask_tail();
        row
    }

    /// Creates a row from a function mapping bit index to bit value.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut row = BitRow::zeros(len);
        for i in 0..len {
            if f(i) {
                row.set(i, true);
            }
        }
        row
    }

    /// Creates a row from a slice of 64-bit words; `len` bits are kept.
    ///
    /// # Panics
    ///
    /// Panics if `words` holds fewer than `len` bits.
    pub fn from_words(words: &[u64], len: usize) -> Self {
        assert!(
            words.len() * 64 >= len,
            "from_words: {} words cannot hold {len} bits",
            words.len()
        );
        let mut w = words[..len.div_ceil(64)].to_vec();
        w.resize(len.div_ceil(64), 0);
        let mut row = BitRow { words: w, len };
        row.mask_tail();
        row
    }

    /// Number of bits (columns) in the row.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the row has zero columns.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`. Use [`BitRow::try_get`] for a fallible variant.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range ({})",
            self.len
        );
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Returns the bit at `index`, or an error if out of range.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::ColumnOutOfRange`] if `index >= len()`.
    pub fn try_get(&self, index: usize) -> Result<bool> {
        if index >= self.len {
            return Err(DramError::ColumnOutOfRange {
                column: index,
                columns: self.len,
            });
        }
        Ok(self.get(index))
    }

    /// Sets the bit at `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range ({})",
            self.len
        );
        if value {
            self.words[index / 64] |= 1 << (index % 64);
        } else {
            self.words[index / 64] &= !(1 << (index % 64));
        }
    }

    /// Returns the `i`-th 64-bit word of the row (zero-padded beyond the row length).
    pub fn word(&self, i: usize) -> u64 {
        self.words.get(i).copied().unwrap_or(0)
    }

    /// Immutable view of the packed words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable view of the packed words.
    ///
    /// Callers must not set bits beyond the row length; [`BitRow::normalize`] can be used to
    /// clear any stray tail bits afterwards.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Clears any bits beyond the row length (useful after direct word manipulation).
    pub fn normalize(&mut self) {
        self.mask_tail();
    }

    /// Number of set bits in the row.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Copies the contents of `src` into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::WidthMismatch`] if the rows have different lengths.
    pub fn copy_from(&mut self, src: &BitRow) -> Result<()> {
        self.check_width(src)?;
        self.words.copy_from_slice(&src.words);
        Ok(())
    }

    /// Copies `src` into `self`, truncating or zero-extending to `self`'s length.
    ///
    /// This is the in-place, allocation-free equivalent of re-building a row from another
    /// row of a different width: whole words are copied with `copy_from_slice`, missing
    /// words are zeroed and the tail is re-masked.
    pub fn copy_from_resized(&mut self, src: &BitRow) {
        let n = self.words.len().min(src.words.len());
        self.words[..n].copy_from_slice(&src.words[..n]);
        for w in &mut self.words[n..] {
            *w = 0;
        }
        self.mask_tail();
    }

    /// Bitwise AND of two rows.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::WidthMismatch`] if the rows have different lengths.
    pub fn and(&self, other: &BitRow) -> Result<BitRow> {
        self.zip_with(other, |a, b| a & b)
    }

    /// Bitwise OR of two rows.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::WidthMismatch`] if the rows have different lengths.
    pub fn or(&self, other: &BitRow) -> Result<BitRow> {
        self.zip_with(other, |a, b| a | b)
    }

    /// Bitwise XOR of two rows.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::WidthMismatch`] if the rows have different lengths.
    pub fn xor(&self, other: &BitRow) -> Result<BitRow> {
        self.zip_with(other, |a, b| a ^ b)
    }

    /// Bitwise NOT of the row (the dual-contact-cell primitive).
    pub fn not(&self) -> BitRow {
        let mut out = BitRow {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Writes the bitwise NOT of `self` into `out` without allocating.
    ///
    /// This is the in-place equivalent of [`BitRow::not`], used by the dual-contact-cell
    /// datapath where the complement is driven directly onto an existing row.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::WidthMismatch`] if the rows have different lengths.
    pub fn not_into(&self, out: &mut BitRow) -> Result<()> {
        self.check_width(out)?;
        for (dst, &src) in out.words.iter_mut().zip(&self.words) {
            *dst = !src;
        }
        out.mask_tail();
        Ok(())
    }

    /// Inverts every bit of the row in place (allocation-free [`BitRow::not`]).
    pub fn invert(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Bitwise majority of three rows: the triple-row-activation primitive.
    ///
    /// Each output bit is `1` when at least two of the corresponding input bits are `1`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::WidthMismatch`] if the rows have different lengths.
    pub fn majority(a: &BitRow, b: &BitRow, c: &BitRow) -> Result<BitRow> {
        a.check_width(b)?;
        a.check_width(c)?;
        let words = a
            .words
            .iter()
            .zip(&b.words)
            .zip(&c.words)
            .map(|((&x, &y), &z)| (x & y) | (y & z) | (x & z))
            .collect();
        Ok(BitRow { words, len: a.len })
    }

    /// Writes the bitwise majority of three rows into `out` without allocating: the
    /// in-place equivalent of [`BitRow::majority`], used by the triple-row-activation
    /// datapath where the majority settles directly in the sense amplifiers.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::WidthMismatch`] if any row's length differs from `out`'s.
    pub fn majority_into(a: &BitRow, b: &BitRow, c: &BitRow, out: &mut BitRow) -> Result<()> {
        a.check_width(b)?;
        a.check_width(c)?;
        a.check_width(out)?;
        for (i, dst) in out.words.iter_mut().enumerate() {
            let (x, y, z) = (a.words[i], b.words[i], c.words[i]);
            *dst = (x & y) | (y & z) | (x & z);
        }
        Ok(())
    }

    /// In-place fill with zeros or ones (the control rows `C0`/`C1`).
    pub fn fill(&mut self, value: bool) {
        let word = if value { u64::MAX } else { 0 };
        for w in &mut self.words {
            *w = word;
        }
        self.mask_tail();
    }

    /// Iterates over the bits of the row.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    fn zip_with(&self, other: &BitRow, f: impl Fn(u64, u64) -> u64) -> Result<BitRow> {
        self.check_width(other)?;
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| f(a, b))
            .collect();
        let mut out = BitRow {
            words,
            len: self.len,
        };
        out.mask_tail();
        Ok(out)
    }

    fn check_width(&self, other: &BitRow) -> Result<()> {
        if self.len != other.len {
            return Err(DramError::WidthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        Ok(())
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }
}

impl fmt::Debug for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Rows are huge; print length, population count and the first word only.
        write!(
            f,
            "BitRow {{ len: {}, ones: {}, word0: {:#018x} }}",
            self.len,
            self.count_ones(),
            self.word(0)
        )
    }
}

impl fmt::Binary for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.len.min(64)).rev() {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 64 {
            write!(f, "… ({} bits)", self.len)?;
        }
        Ok(())
    }
}

impl Default for BitRow {
    fn default() -> Self {
        BitRow::zeros(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitRow::zeros(100);
        let o = BitRow::ones(100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(o.count_ones(), 100);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
        assert!(z.is_zero());
        assert!(!o.is_zero());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut row = BitRow::zeros(130);
        row.set(0, true);
        row.set(64, true);
        row.set(129, true);
        assert!(row.get(0));
        assert!(row.get(64));
        assert!(row.get(129));
        assert!(!row.get(1));
        assert_eq!(row.count_ones(), 3);
        row.set(64, false);
        assert_eq!(row.count_ones(), 2);
    }

    #[test]
    fn try_get_out_of_range() {
        let row = BitRow::zeros(16);
        assert_eq!(
            row.try_get(16),
            Err(DramError::ColumnOutOfRange {
                column: 16,
                columns: 16
            })
        );
        assert_eq!(row.try_get(3), Ok(false));
    }

    #[test]
    fn bitwise_ops_match_u64_semantics() {
        let a = BitRow::splat_word(0xDEAD_BEEF_0123_4567, 256);
        let b = BitRow::splat_word(0x0F0F_F0F0_AAAA_5555, 256);
        assert_eq!(
            a.and(&b).unwrap().word(1),
            0xDEAD_BEEF_0123_4567 & 0x0F0F_F0F0_AAAA_5555
        );
        assert_eq!(
            a.or(&b).unwrap().word(2),
            0xDEAD_BEEF_0123_4567 | 0x0F0F_F0F0_AAAA_5555
        );
        assert_eq!(
            a.xor(&b).unwrap().word(3),
            0xDEAD_BEEF_0123_4567 ^ 0x0F0F_F0F0_AAAA_5555
        );
        assert_eq!(a.not().word(0), !0xDEAD_BEEF_0123_4567u64);
    }

    #[test]
    fn majority_truth_table() {
        // Exhaustive 3-input truth table packed into one word.
        let a = BitRow::splat_word(0b1111_0000, 8);
        let b = BitRow::splat_word(0b1100_1100, 8);
        let c = BitRow::splat_word(0b1010_1010, 8);
        let maj = BitRow::majority(&a, &b, &c).unwrap();
        assert_eq!(maj.word(0), 0b1110_1000);
    }

    #[test]
    fn majority_of_identical_rows_is_identity() {
        let a = BitRow::splat_word(0x1234_5678_9ABC_DEF0, 512);
        assert_eq!(BitRow::majority(&a, &a, &a).unwrap(), a);
    }

    #[test]
    fn not_respects_tail_mask() {
        let z = BitRow::zeros(10);
        let n = z.not();
        assert_eq!(n.count_ones(), 10);
        assert_eq!(n.word(0), 0b11_1111_1111);
    }

    #[test]
    fn width_mismatch_is_reported() {
        let a = BitRow::zeros(64);
        let b = BitRow::zeros(65);
        assert_eq!(
            a.and(&b),
            Err(DramError::WidthMismatch {
                left: 64,
                right: 65
            })
        );
        assert!(BitRow::majority(&a, &a, &b).is_err());
    }

    #[test]
    fn from_fn_and_iter() {
        let row = BitRow::from_fn(70, |i| i % 3 == 0);
        let expected: Vec<bool> = (0..70).map(|i| i % 3 == 0).collect();
        let got: Vec<bool> = row.iter().collect();
        assert_eq!(expected, got);
    }

    #[test]
    fn from_words_truncates_and_masks() {
        let row = BitRow::from_words(&[u64::MAX, u64::MAX], 70);
        assert_eq!(row.count_ones(), 70);
        assert_eq!(row.len(), 70);
    }

    #[test]
    fn fill_toggles_all_bits() {
        let mut row = BitRow::zeros(200);
        row.fill(true);
        assert_eq!(row.count_ones(), 200);
        row.fill(false);
        assert!(row.is_zero());
    }

    #[test]
    fn copy_from_replaces_contents() {
        let mut dst = BitRow::zeros(128);
        let src = BitRow::splat_word(0xFFFF_0000_FFFF_0000, 128);
        dst.copy_from(&src).unwrap();
        assert_eq!(dst, src);
    }

    #[test]
    fn in_place_ops_match_allocating_variants() {
        let a = BitRow::splat_word(0xDEAD_BEEF_0123_4567, 130);
        let b = BitRow::splat_word(0x0F0F_F0F0_AAAA_5555, 130);
        let c = BitRow::splat_word(0x1234_5678_9ABC_DEF0, 130);

        let mut out = BitRow::zeros(130);
        a.not_into(&mut out).unwrap();
        assert_eq!(out, a.not());

        BitRow::majority_into(&a, &b, &c, &mut out).unwrap();
        assert_eq!(out, BitRow::majority(&a, &b, &c).unwrap());

        let mut inv = a.clone();
        inv.invert();
        assert_eq!(inv, a.not());

        let mut mismatched = BitRow::zeros(64);
        assert!(a.not_into(&mut mismatched).is_err());
        assert!(BitRow::majority_into(&a, &b, &c, &mut mismatched).is_err());
    }

    #[test]
    fn copy_from_resized_truncates_and_extends() {
        let short = BitRow::ones(10);
        let mut dst = BitRow::splat_word(u64::MAX, 130);
        dst.copy_from_resized(&short);
        assert_eq!(dst.count_ones(), 10);
        assert_eq!(dst.len(), 130);

        let long = BitRow::ones(130);
        let mut small = BitRow::zeros(70);
        small.copy_from_resized(&long);
        assert_eq!(small.count_ones(), 70);
        assert_eq!(small.len(), 70);
    }

    #[test]
    fn debug_and_binary_render() {
        let row = BitRow::splat_word(0b1011, 8);
        assert!(format!("{row:?}").contains("len: 8"));
        assert_eq!(format!("{row:b}"), "00001011");
    }
}
