//! A DRAM bank: a collection of subarrays that can compute in lock-step.
//!
//! SIMDRAM exploits *subarray-level parallelism*: the memory controller broadcasts the same
//! μProgram command stream to many subarrays of a bank simultaneously, so the latency of an
//! operation is paid once per bank while the number of SIMD lanes scales with the number of
//! participating subarrays.

use std::collections::HashMap;

use crate::config::DramConfig;
use crate::error::{DramError, Result};
use crate::subarray::{RowAddr, Subarray};

/// A bank containing `subarrays_per_bank` compute-capable subarrays.
#[derive(Debug, Clone)]
pub struct Bank {
    subarrays: Vec<Subarray>,
}

impl Bank {
    /// Creates a bank with the geometry of `config`.
    pub fn new(config: &DramConfig) -> Self {
        Bank {
            subarrays: (0..config.subarrays_per_bank)
                .map(|_| Subarray::new(config))
                .collect(),
        }
    }

    /// Number of subarrays in the bank.
    pub fn subarray_count(&self) -> usize {
        self.subarrays.len()
    }

    /// Immutable access to a subarray.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::SubarrayOutOfRange`] if the index is invalid.
    pub fn subarray(&self, index: usize) -> Result<&Subarray> {
        self.subarrays
            .get(index)
            .ok_or(DramError::SubarrayOutOfRange {
                subarray: index,
                subarrays: self.subarrays.len(),
            })
    }

    /// Mutable access to a subarray.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::SubarrayOutOfRange`] if the index is invalid.
    pub fn subarray_mut(&mut self, index: usize) -> Result<&mut Subarray> {
        let subarrays = self.subarrays.len();
        self.subarrays
            .get_mut(index)
            .ok_or(DramError::SubarrayOutOfRange {
                subarray: index,
                subarrays,
            })
    }

    /// Iterates over the subarrays.
    pub fn iter(&self) -> impl Iterator<Item = &Subarray> {
        self.subarrays.iter()
    }

    /// Iterates mutably over the subarrays.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Subarray> {
        self.subarrays.iter_mut()
    }

    /// The bank's subarrays as a mutable slice, for slice-splitting borrows.
    pub fn subarrays_mut_slice(&mut self) -> &mut [Subarray] {
        &mut self.subarrays
    }

    /// Borrows several subarrays mutably at once, one `&mut` per index in `indices`,
    /// returned in request order.
    ///
    /// This is the bank-local disjoint-borrow primitive behind
    /// [`crate::DramDevice::subarrays_mut`]: a broadcast executor obtains independent
    /// mutable access to every participating subarray up front and can then drive them from
    /// separate threads. Built entirely on safe slice splitting — no aliasing is possible.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::SubarrayOutOfRange`] for an invalid index and
    /// [`DramError::AliasedSubarray`] if the same index appears twice (with `bank: None` —
    /// a bank does not know its own position in the device).
    ///
    /// # Examples
    ///
    /// ```
    /// use simdram_dram::{Bank, BitRow, DramConfig};
    ///
    /// let mut bank = Bank::new(&DramConfig::tiny());
    /// let mut sas = bank.subarrays_mut(&[1, 0])?;
    /// assert_eq!(sas.len(), 2);
    /// sas[0].write_row(0, &BitRow::ones(256)); // subarray 1 (request order)
    /// # Ok::<(), simdram_dram::DramError>(())
    /// ```
    pub fn subarrays_mut(&mut self, indices: &[usize]) -> Result<Vec<&mut Subarray>> {
        let subarrays = self.subarrays.len();
        // index -> request position; insert detects duplicates, lookup keeps the
        // collection pass O(subarrays + indices) instead of quadratic.
        let mut pos_of: HashMap<usize, usize> = HashMap::with_capacity(indices.len());
        for (pos, &idx) in indices.iter().enumerate() {
            if idx >= subarrays {
                return Err(DramError::SubarrayOutOfRange {
                    subarray: idx,
                    subarrays,
                });
            }
            if pos_of.insert(idx, pos).is_some() {
                return Err(DramError::AliasedSubarray {
                    bank: None,
                    subarray: idx,
                });
            }
        }
        let mut slots: Vec<Option<&mut Subarray>> = Vec::with_capacity(indices.len());
        slots.resize_with(indices.len(), || None);
        for (idx, sa) in self.subarrays.iter_mut().enumerate() {
            if let Some(&pos) = pos_of.get(&idx) {
                slots[pos] = Some(sa);
            }
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("every validated index was visited"))
            .collect())
    }

    /// Broadcasts an `AAP src, dst` command to every subarray whose index is in
    /// `participants` (lock-step SIMD execution).
    ///
    /// # Errors
    ///
    /// Returns an error if any participant index or row address is invalid.
    pub fn broadcast_aap(
        &mut self,
        participants: &[usize],
        src: RowAddr,
        dst: RowAddr,
    ) -> Result<()> {
        for &idx in participants {
            self.subarray_mut(idx)?.aap(src, dst)?;
        }
        Ok(())
    }

    /// Clears all per-subarray command traces.
    pub fn reset_traces(&mut self) {
        for sa in &mut self.subarrays {
            sa.reset_trace();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrow::BitRow;

    #[test]
    fn bank_has_configured_subarrays() {
        let cfg = DramConfig::tiny();
        let bank = Bank::new(&cfg);
        assert_eq!(bank.subarray_count(), cfg.subarrays_per_bank);
    }

    #[test]
    fn out_of_range_subarray_is_an_error() {
        let mut bank = Bank::new(&DramConfig::tiny());
        assert!(bank.subarray(100).is_err());
        assert!(bank.subarray_mut(100).is_err());
    }

    #[test]
    fn broadcast_aap_touches_all_participants() {
        let cfg = DramConfig::tiny();
        let mut bank = Bank::new(&cfg);
        let pattern = BitRow::splat_word(0xDEAD, cfg.columns_per_row);
        for idx in 0..bank.subarray_count() {
            bank.subarray_mut(idx).unwrap().write_row(0, &pattern);
        }
        bank.broadcast_aap(&[0, 1], RowAddr::Data(0), RowAddr::Data(1))
            .unwrap();
        for idx in 0..2 {
            assert_eq!(
                bank.subarray(idx).unwrap().peek(RowAddr::Data(1)).unwrap(),
                pattern
            );
        }
    }

    #[test]
    fn subarrays_mut_returns_disjoint_borrows_in_request_order() {
        let cfg = DramConfig::tiny();
        let mut bank = Bank::new(&cfg);
        let pattern = BitRow::splat_word(0xBEEF, cfg.columns_per_row);
        {
            let mut sas = bank.subarrays_mut(&[1, 0]).unwrap();
            assert_eq!(sas.len(), 2);
            // Request order: slot 0 is subarray 1.
            sas[0].write_row(3, &pattern);
        }
        assert_eq!(
            bank.subarray(1).unwrap().peek(RowAddr::Data(3)).unwrap(),
            pattern
        );
        assert_ne!(
            bank.subarray(0).unwrap().peek(RowAddr::Data(3)).unwrap(),
            pattern
        );
    }

    #[test]
    fn subarrays_mut_rejects_bad_requests() {
        let mut bank = Bank::new(&DramConfig::tiny());
        assert!(matches!(
            bank.subarrays_mut(&[0, 99]),
            Err(DramError::SubarrayOutOfRange { .. })
        ));
        assert!(matches!(
            bank.subarrays_mut(&[0, 1, 0]),
            Err(DramError::AliasedSubarray {
                bank: None,
                subarray: 0
            })
        ));
        assert!(bank.subarrays_mut(&[]).unwrap().is_empty());
    }

    #[test]
    fn reset_traces_clears_all_subarrays() {
        let cfg = DramConfig::tiny();
        let mut bank = Bank::new(&cfg);
        bank.subarray_mut(0)
            .unwrap()
            .write_row(0, &BitRow::zeros(256));
        bank.reset_traces();
        assert!(bank.subarray(0).unwrap().trace().is_empty());
    }
}
