//! A DRAM bank: a collection of subarrays that can compute in lock-step.
//!
//! SIMDRAM exploits *subarray-level parallelism*: the memory controller broadcasts the same
//! μProgram command stream to many subarrays of a bank simultaneously, so the latency of an
//! operation is paid once per bank while the number of SIMD lanes scales with the number of
//! participating subarrays.

use crate::config::DramConfig;
use crate::error::{DramError, Result};
use crate::subarray::{RowAddr, Subarray};

/// A bank containing `subarrays_per_bank` compute-capable subarrays.
#[derive(Debug, Clone)]
pub struct Bank {
    subarrays: Vec<Subarray>,
}

impl Bank {
    /// Creates a bank with the geometry of `config`.
    pub fn new(config: &DramConfig) -> Self {
        Bank {
            subarrays: (0..config.subarrays_per_bank)
                .map(|_| Subarray::new(config))
                .collect(),
        }
    }

    /// Number of subarrays in the bank.
    pub fn subarray_count(&self) -> usize {
        self.subarrays.len()
    }

    /// Immutable access to a subarray.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::SubarrayOutOfRange`] if the index is invalid.
    pub fn subarray(&self, index: usize) -> Result<&Subarray> {
        self.subarrays
            .get(index)
            .ok_or(DramError::SubarrayOutOfRange {
                subarray: index,
                subarrays: self.subarrays.len(),
            })
    }

    /// Mutable access to a subarray.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::SubarrayOutOfRange`] if the index is invalid.
    pub fn subarray_mut(&mut self, index: usize) -> Result<&mut Subarray> {
        let subarrays = self.subarrays.len();
        self.subarrays
            .get_mut(index)
            .ok_or(DramError::SubarrayOutOfRange {
                subarray: index,
                subarrays,
            })
    }

    /// Iterates over the subarrays.
    pub fn iter(&self) -> impl Iterator<Item = &Subarray> {
        self.subarrays.iter()
    }

    /// Iterates mutably over the subarrays.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Subarray> {
        self.subarrays.iter_mut()
    }

    /// Broadcasts an `AAP src, dst` command to every subarray whose index is in
    /// `participants` (lock-step SIMD execution).
    ///
    /// # Errors
    ///
    /// Returns an error if any participant index or row address is invalid.
    pub fn broadcast_aap(
        &mut self,
        participants: &[usize],
        src: RowAddr,
        dst: RowAddr,
    ) -> Result<()> {
        for &idx in participants {
            self.subarray_mut(idx)?.aap(src, dst)?;
        }
        Ok(())
    }

    /// Clears all per-subarray command traces.
    pub fn reset_traces(&mut self) {
        for sa in &mut self.subarrays {
            sa.reset_trace();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrow::BitRow;

    #[test]
    fn bank_has_configured_subarrays() {
        let cfg = DramConfig::tiny();
        let bank = Bank::new(&cfg);
        assert_eq!(bank.subarray_count(), cfg.subarrays_per_bank);
    }

    #[test]
    fn out_of_range_subarray_is_an_error() {
        let mut bank = Bank::new(&DramConfig::tiny());
        assert!(bank.subarray(100).is_err());
        assert!(bank.subarray_mut(100).is_err());
    }

    #[test]
    fn broadcast_aap_touches_all_participants() {
        let cfg = DramConfig::tiny();
        let mut bank = Bank::new(&cfg);
        let pattern = BitRow::splat_word(0xDEAD, cfg.columns_per_row);
        for idx in 0..bank.subarray_count() {
            bank.subarray_mut(idx).unwrap().write_row(0, &pattern);
        }
        bank.broadcast_aap(&[0, 1], RowAddr::Data(0), RowAddr::Data(1))
            .unwrap();
        for idx in 0..2 {
            assert_eq!(
                bank.subarray(idx).unwrap().peek(RowAddr::Data(1)).unwrap(),
                pattern
            );
        }
    }

    #[test]
    fn reset_traces_clears_all_subarrays() {
        let cfg = DramConfig::tiny();
        let mut bank = Bank::new(&cfg);
        bank.subarray_mut(0)
            .unwrap()
            .write_row(0, &BitRow::zeros(256));
        bank.reset_traces();
        assert!(bank.subarray(0).unwrap().trace().is_empty());
    }
}
