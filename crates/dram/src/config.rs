//! DRAM geometry configuration.

use crate::energy::EnergyModel;
use crate::error::{DramError, Result};
use crate::timing::DramTiming;

/// Geometry and model parameters of the simulated DRAM device.
///
/// The defaults match the configuration evaluated in the SIMDRAM paper: a DDR4-2400 module
/// with 16 banks, 64 subarrays per bank, 512 rows per subarray and 8 KiB rows (65,536
/// bitlines), of which 16 banks × however many subarrays the experiment enables participate
/// in computation.
///
/// Use [`DramConfig::builder`] to customize, e.g. for small unit-test geometries.
///
/// # Examples
///
/// ```
/// use simdram_dram::DramConfig;
///
/// let cfg = DramConfig::builder()
///     .banks(4)
///     .subarrays_per_bank(8)
///     .columns_per_row(1024)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.total_subarrays(), 32);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Number of banks in the device.
    pub banks: usize,
    /// Number of subarrays per bank.
    pub subarrays_per_bank: usize,
    /// Number of data rows per subarray (excluding the B-group compute rows).
    pub rows_per_subarray: usize,
    /// Number of columns (bitlines) per row; each column is one SIMD lane.
    pub columns_per_row: usize,
    /// Number of rows reserved in each compute subarray for μProgram temporaries
    /// (the "reserved rows" of SIMDRAM Step 2).
    pub reserved_rows: usize,
    /// DDR timing parameters.
    pub timing: DramTiming,
    /// Per-command energy model.
    pub energy: EnergyModel,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 16,
            subarrays_per_bank: 64,
            rows_per_subarray: 512,
            columns_per_row: 65_536,
            reserved_rows: 128,
            timing: DramTiming::default(),
            energy: EnergyModel::default(),
        }
    }
}

impl DramConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> DramConfigBuilder {
        DramConfigBuilder {
            config: DramConfig::default(),
        }
    }

    /// A small geometry suitable for fast unit tests: 2 banks × 2 subarrays × 64 rows of
    /// 256 columns.
    pub fn tiny() -> Self {
        DramConfig::builder()
            .banks(2)
            .subarrays_per_bank(2)
            .rows_per_subarray(256)
            .columns_per_row(256)
            .reserved_rows(96)
            .build()
            .expect("tiny config is valid")
    }

    /// Total number of subarrays in the device.
    pub fn total_subarrays(&self) -> usize {
        self.banks * self.subarrays_per_bank
    }

    /// Total number of SIMD lanes if every subarray in the device computes concurrently.
    pub fn total_lanes(&self) -> usize {
        self.total_subarrays() * self.columns_per_row
    }

    /// Size of one row in bytes.
    pub fn row_bytes(&self) -> usize {
        self.columns_per_row / 8
    }

    /// Raw data capacity of the device in bytes (data rows only).
    pub fn capacity_bytes(&self) -> usize {
        self.total_subarrays() * self.rows_per_subarray * self.row_bytes()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if any dimension is zero, if the row width is not
    /// a multiple of 8, or if the reserved-row count does not fit in the subarray.
    pub fn validate(&self) -> Result<()> {
        if self.banks == 0
            || self.subarrays_per_bank == 0
            || self.rows_per_subarray == 0
            || self.columns_per_row == 0
        {
            return Err(DramError::InvalidConfig(
                "all geometry dimensions must be non-zero".into(),
            ));
        }
        if self.columns_per_row % 8 != 0 {
            return Err(DramError::InvalidConfig(format!(
                "columns_per_row must be a multiple of 8, got {}",
                self.columns_per_row
            )));
        }
        if self.reserved_rows >= self.rows_per_subarray {
            return Err(DramError::InvalidConfig(format!(
                "reserved_rows ({}) must be smaller than rows_per_subarray ({})",
                self.reserved_rows, self.rows_per_subarray
            )));
        }
        Ok(())
    }
}

/// Builder for [`DramConfig`].
#[derive(Debug, Clone)]
pub struct DramConfigBuilder {
    config: DramConfig,
}

impl DramConfigBuilder {
    /// Sets the number of banks.
    pub fn banks(mut self, banks: usize) -> Self {
        self.config.banks = banks;
        self
    }

    /// Sets the number of subarrays per bank.
    pub fn subarrays_per_bank(mut self, subarrays: usize) -> Self {
        self.config.subarrays_per_bank = subarrays;
        self
    }

    /// Sets the number of data rows per subarray.
    pub fn rows_per_subarray(mut self, rows: usize) -> Self {
        self.config.rows_per_subarray = rows;
        self
    }

    /// Sets the number of columns (SIMD lanes) per row.
    pub fn columns_per_row(mut self, columns: usize) -> Self {
        self.config.columns_per_row = columns;
        self
    }

    /// Sets the number of rows reserved for μProgram temporaries.
    pub fn reserved_rows(mut self, rows: usize) -> Self {
        self.config.reserved_rows = rows;
        self
    }

    /// Sets the timing parameters.
    pub fn timing(mut self, timing: DramTiming) -> Self {
        self.config.timing = timing;
        self
    }

    /// Sets the energy model.
    pub fn energy(mut self, energy: EnergyModel) -> Self {
        self.config.energy = energy;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when the configuration is inconsistent; see
    /// [`DramConfig::validate`].
    pub fn build(self) -> Result<DramConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_configuration() {
        let cfg = DramConfig::default();
        assert_eq!(cfg.banks, 16);
        assert_eq!(cfg.columns_per_row, 65_536);
        assert_eq!(cfg.row_bytes(), 8192);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn tiny_config_is_valid_and_small() {
        let cfg = DramConfig::tiny();
        assert!(cfg.validate().is_ok());
        assert!(cfg.capacity_bytes() < 2 * 1024 * 1024);
    }

    #[test]
    fn builder_rejects_zero_dimensions() {
        let err = DramConfig::builder().banks(0).build().unwrap_err();
        assert!(matches!(err, DramError::InvalidConfig(_)));
    }

    #[test]
    fn builder_rejects_non_byte_row_width() {
        let err = DramConfig::builder()
            .columns_per_row(100)
            .build()
            .unwrap_err();
        assert!(matches!(err, DramError::InvalidConfig(_)));
    }

    #[test]
    fn builder_rejects_reserved_rows_overflow() {
        let err = DramConfig::builder()
            .rows_per_subarray(16)
            .reserved_rows(16)
            .build()
            .unwrap_err();
        assert!(matches!(err, DramError::InvalidConfig(_)));
    }

    #[test]
    fn lane_count_is_product_of_geometry() {
        let cfg = DramConfig::tiny();
        assert_eq!(cfg.total_lanes(), 2 * 2 * 256);
    }
}
