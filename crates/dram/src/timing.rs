//! DDR timing parameters and derived latencies of the in-DRAM compute primitives.
//!
//! The SIMDRAM paper (like Ambit and RowClone before it) derives the latency of in-DRAM
//! computation from a handful of standard DDR timing parameters. The two command templates
//! that matter are:
//!
//! * `AP` — **A**CTIVATE → **P**RECHARGE. Used for triple-row activation: the row(s) are
//!   opened, charge sharing settles the majority value into the cells and sense amplifiers,
//!   and the array is precharged. Latency ≈ `tRAS + tRP`.
//! * `AAP` — **A**CTIVATE → **A**CTIVATE → **P**RECHARGE. Used for RowClone-FPM copies
//!   (copy the source row through the sense amplifiers into the destination row). Latency ≈
//!   `2·tRAS + tRP` in the conservative model used here (the paper notes the second
//!   activation can be shortened; see [`DramTiming::aggressive_aap`]).

/// Canonical DDR4-2400R timing constants, in nanoseconds.
///
/// This module is the **single source of truth** for the DDR4 timing parameters used
/// throughout the workspace: [`DramTiming::DDR4_2400`] (and therefore
/// `DramTiming::default()`) is built from these constants, and the analytic performance
/// model in `simdram-core` re-exports this module so figure generation and the functional
/// simulator can never drift apart on tRAS/tWR and friends.
pub mod ddr4 {
    /// Row-address-to-column-address delay (tRCD).
    pub const T_RCD_NS: f64 = 12.5;
    /// Minimum ACTIVATE-to-PRECHARGE time (tRAS).
    pub const T_RAS_NS: f64 = 32.0;
    /// Precharge latency (tRP).
    pub const T_RP_NS: f64 = 12.5;
    /// Column access strobe latency (tCAS).
    pub const T_CAS_NS: f64 = 12.5;
    /// Column-to-column (burst gap) delay (tCCD_L).
    pub const T_CCD_NS: f64 = 5.0;
    /// Write recovery time (tWR).
    pub const T_WR_NS: f64 = 15.0;
    /// Bus clock period (tCK; DDR transfers two beats per cycle).
    pub const T_CK_NS: f64 = 0.833;
    /// Minimum ACTIVATE-to-ACTIVATE delay between different banks of one rank (tRRD_L).
    pub const T_RRD_NS: f64 = 4.9;
    /// Four-activate window: at most four ACTIVATEs may issue to one rank within this
    /// span (tFAW).
    pub const T_FAW_NS: f64 = 30.0;
    /// Average refresh interval: one REFRESH command is due every tREFI (DDR4: 7.8 µs at
    /// normal temperature).
    pub const T_REFI_NS: f64 = 7_800.0;
    /// Refresh cycle time: how long a bank is unavailable while a REFRESH completes
    /// (tRFC; DDR4 8 Gb parts).
    pub const T_RFC_NS: f64 = 350.0;
}

/// DDR timing parameters (all in nanoseconds) plus derived compute-command latencies.
///
/// Defaults correspond to a DDR4-2400 part, the configuration used by the SIMDRAM paper.
#[derive(Debug, Clone, PartialEq)]
pub struct DramTiming {
    /// Row-address-to-column-address delay (ACTIVATE until the row is readable).
    pub t_rcd_ns: f64,
    /// Minimum time a row must stay open (ACTIVATE to PRECHARGE).
    pub t_ras_ns: f64,
    /// Precharge latency.
    pub t_rp_ns: f64,
    /// Column access strobe latency for reads.
    pub t_cas_ns: f64,
    /// Column-to-column delay (burst gap) for streaming reads/writes.
    pub t_ccd_ns: f64,
    /// Write recovery time.
    pub t_wr_ns: f64,
    /// Bus clock period (I/O clock; DDR transfers two beats per cycle).
    pub t_ck_ns: f64,
    /// When `true`, model the optimized AAP in which the second ACTIVATE overlaps with the
    /// first row's restoration (as proposed by RowClone/Ambit), reducing AAP latency.
    pub aggressive_aap: bool,
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::DDR4_2400
    }
}

impl DramTiming {
    /// The DDR4-2400R timing set used by the SIMDRAM paper, built from the canonical
    /// constants in [`ddr4`].
    pub const DDR4_2400: DramTiming = DramTiming {
        t_rcd_ns: ddr4::T_RCD_NS,
        t_ras_ns: ddr4::T_RAS_NS,
        t_rp_ns: ddr4::T_RP_NS,
        t_cas_ns: ddr4::T_CAS_NS,
        t_ccd_ns: ddr4::T_CCD_NS,
        t_wr_ns: ddr4::T_WR_NS,
        t_ck_ns: ddr4::T_CK_NS,
        aggressive_aap: false,
    };

    /// Creates the default DDR4-2400 timing set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of whole bus-clock cycles a busy window of `ns` nanoseconds occupies.
    pub fn cycles(&self, ns: f64) -> u64 {
        if ns <= 0.0 {
            0
        } else {
            (ns / self.t_ck_ns).ceil() as u64
        }
    }

    /// Latency of a single ACTIVATE → PRECHARGE command pair (`AP`), used for triple-row
    /// activation.
    pub fn ap_ns(&self) -> f64 {
        self.t_ras_ns + self.t_rp_ns
    }

    /// Latency of an ACTIVATE → ACTIVATE → PRECHARGE command triple (`AAP`), used for
    /// RowClone-FPM copies and for moving operands in and out of the B-group.
    pub fn aap_ns(&self) -> f64 {
        if self.aggressive_aap {
            // The second activation only needs to drive the destination row's cells from the
            // already-latched sense amplifiers; Ambit models this as tRAS + tRCD + tRP.
            self.t_ras_ns + self.t_rcd_ns + self.t_rp_ns
        } else {
            2.0 * self.t_ras_ns + self.t_rp_ns
        }
    }

    /// Latency of a conventional row activation followed by a burst read of `bytes` bytes
    /// over a 64-bit (8-byte per beat) channel, followed by a precharge.
    ///
    /// Used for modelling the CPU reading operands in the horizontal layout and for the
    /// transposition unit's row reads.
    pub fn row_read_ns(&self, bytes: usize) -> f64 {
        let beats = bytes.div_ceil(8);
        // Two beats per clock (DDR).
        let burst_ns = (beats as f64 / 2.0) * self.t_ck_ns;
        self.t_rcd_ns + self.t_cas_ns + burst_ns + self.t_rp_ns
    }

    /// Latency of writing `bytes` bytes into an open row and precharging.
    pub fn row_write_ns(&self, bytes: usize) -> f64 {
        let beats = bytes.div_ceil(8);
        let burst_ns = (beats as f64 / 2.0) * self.t_ck_ns;
        self.t_rcd_ns + burst_ns + self.t_wr_ns + self.t_rp_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies_are_in_expected_ranges() {
        let t = DramTiming::default();
        // AP ~ 44.5 ns, AAP ~ 76.5 ns for DDR4-2400.
        assert!((t.ap_ns() - 44.5).abs() < 1e-9);
        assert!((t.aap_ns() - 76.5).abs() < 1e-9);
        assert!(t.aap_ns() > t.ap_ns());
    }

    #[test]
    fn aggressive_aap_is_faster() {
        let mut t = DramTiming::default();
        let slow = t.aap_ns();
        t.aggressive_aap = true;
        assert!(t.aap_ns() < slow);
    }

    #[test]
    fn row_read_scales_with_burst_length() {
        let t = DramTiming::default();
        let short = t.row_read_ns(64);
        let long = t.row_read_ns(8192);
        assert!(long > short);
        // An 8 KiB row is 1024 beats = 512 clocks ≈ 426 ns of burst on top of the fixed part.
        assert!(long - short > 400.0);
    }

    #[test]
    fn row_write_includes_write_recovery() {
        let t = DramTiming::default();
        assert!(t.row_write_ns(64) > t.t_rcd_ns + t.t_wr_ns);
    }

    #[test]
    fn default_is_built_from_the_canonical_constants() {
        let t = DramTiming::default();
        assert_eq!(t, DramTiming::DDR4_2400);
        assert_eq!(t.t_ras_ns, ddr4::T_RAS_NS);
        assert_eq!(t.t_wr_ns, ddr4::T_WR_NS);
        assert_eq!(t.t_ck_ns, ddr4::T_CK_NS);
    }

    #[test]
    fn cycles_round_up_and_zero_is_zero() {
        let t = DramTiming::default();
        assert_eq!(t.cycles(0.0), 0);
        assert_eq!(t.cycles(-5.0), 0);
        assert_eq!(t.cycles(t.t_ck_ns), 1);
        assert_eq!(t.cycles(t.t_ck_ns * 2.5), 3);
    }
}
