//! Bank-state command-trace replay: a higher-fidelity timing model behind the
//! pluggable timing-backend layer.
//!
//! The analytic estimator (`simdram-core`'s `TraceEstimator`) charges every command its
//! fixed template latency and takes the max over lock-step chunks — an idealized model
//! that ignores three effects a real memory controller cannot:
//!
//! * **Row-buffer state.** Each subarray's sense amplifiers hold the last activated
//!   row. Depending on what the previous command left latched, the next command's
//!   ACTIVATE is a *hit* (the needed row is already open — no extra charge), a *miss*
//!   (clean activate, already priced into the template via tRCD/tRAS/tRP), or a
//!   *conflict* (the open-page policy guessed wrong and an extra PRECHARGE must close
//!   the stale row first: +tRP).
//! * **Command-bus serialization.** ACTIVATEs to one rank are rate-limited: successive
//!   ACTIVATEs must be ≥ tRRD apart and at most four may issue inside any tFAW window.
//!   The broadcast's chunks activate "simultaneously" in the analytic model but
//!   stagger on real hardware.
//! * **Refresh interference.** Every tREFI the rank owes a REFRESH that stalls the
//!   affected bank for tRFC.
//!
//! [`BankStateModel::replay`] replays the compact per-chunk [`CommandTrace`]s against
//! this state, producing a [`BankStateReplay`] whose latency is **always ≥** the
//! analytic busy window (every modeled penalty is a non-negative addition on top of
//! the template latencies). The replay is a pure function of the traces, so — like the
//! analytic path — it is bit-identical across execution policies and functional modes.
//!
//! The traces carry the [`crate::rowtag`] each command's first activation opens, so
//! the row-buffer classification compares real addresses whenever they are present;
//! commands recorded without an address ([`crate::rowtag::UNKNOWN`], e.g. hand-built
//! traces or pre-address history) fall back to the deterministic *kind transition*
//! convention documented on [`RowBufferOutcome`], which keeps every pre-existing
//! replay result reproducible.

use crate::command::{rowtag, CommandKind, CommandTrace, DramCommand};
use crate::timing::{ddr4, DramTiming};

/// How many ACTIVATEs may be in flight inside one tFAW window (a DDR4 constant).
const FAW_DEPTH: usize = 4;

/// Bank-level timing parameters of the replay model, in nanoseconds.
///
/// These extend [`DramTiming`] (which carries the per-command template parameters)
/// with the rank/bank interaction constraints only the bank-state backend models.
/// Defaults come from the canonical [`ddr4`] constants.
#[derive(Debug, Clone, PartialEq)]
pub struct BankTiming {
    /// Minimum ACTIVATE-to-ACTIVATE delay across banks of one rank (tRRD).
    pub t_rrd_ns: f64,
    /// Four-activate window (tFAW): at most four ACTIVATEs per rank inside it.
    pub t_faw_ns: f64,
    /// Average refresh interval (tREFI): one refresh is due per elapsed tREFI.
    pub t_refi_ns: f64,
    /// Refresh cycle time (tRFC): how long a refresh stalls the bank.
    pub t_rfc_ns: f64,
}

impl Default for BankTiming {
    fn default() -> Self {
        BankTiming {
            t_rrd_ns: ddr4::T_RRD_NS,
            t_faw_ns: ddr4::T_FAW_NS,
            t_refi_ns: ddr4::T_REFI_NS,
            t_rfc_ns: ddr4::T_RFC_NS,
        }
    }
}

impl BankTiming {
    /// The DDR4-2400 bank-interaction timing set, from the canonical [`ddr4`] constants.
    pub fn ddr4_2400() -> Self {
        Self::default()
    }
}

/// The row-buffer outcome the replay assigns to one command.
///
/// When commands carry a real row address ([`crate::DramCommand::row`] ≠
/// [`rowtag::UNKNOWN`]), the replay compares addresses directly — see
/// [`BankStateModel::replay`]. For addressless commands the outcome falls back to the
/// historical *kind transition* convention of [`RowBufferOutcome::classify`]:
///
/// * previous `AP(TRA)` → current `AAP`: **hit**. This is the μProgram's signature
///   `TRA; AAP` majority-then-copy idiom — the sense amplifiers still latch the TRA
///   result the AAP's first activation needs, so no extra charge applies.
/// * `RD` → `RD` or `WR` → `WR`: **conflict**. Streaming bit-row reads/writes walk
///   *different* rows of the same bank, so an open-page controller holds the previous
///   row open and pays an extra precharge (+tRP) when the next row turns out to differ.
/// * everything else: **miss** — a clean activate whose full cost the command template
///   already carries; no extra charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBufferOutcome {
    /// The needed row was already open; no extra latency.
    Hit,
    /// Clean activate; the template latency already covers it.
    Miss,
    /// A stale row had to be closed first: +tRP on top of the template latency.
    Conflict,
}

impl RowBufferOutcome {
    /// Classifies the transition from the previous command kind (if any) to `current`.
    pub fn classify(previous: Option<CommandKind>, current: CommandKind) -> Self {
        match (previous, current) {
            (Some(CommandKind::TripleRowActivate), CommandKind::ActivateActivatePrecharge) => {
                RowBufferOutcome::Hit
            }
            (Some(CommandKind::Read), CommandKind::Read)
            | (Some(CommandKind::Write), CommandKind::Write) => RowBufferOutcome::Conflict,
            _ => RowBufferOutcome::Miss,
        }
    }
}

/// The bank-state replay result of one broadcast: the fidelity-model counterpart of
/// the analytic `BroadcastEstimate`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BankStateReplay {
    /// Number of chunks (per-subarray traces) replayed.
    pub chunks: usize,
    /// Total commands replayed across all chunks (including drained history charged at
    /// its analytic cost; see [`BankStateModel::replay`]).
    pub commands: usize,
    /// The broadcast's modeled busy window under bank state, in nanoseconds: the max
    /// over the chunks' finish times. Always ≥ the analytic busy window.
    pub latency_ns: f64,
    /// ACTIVATE serialization stall (tRRD/tFAW) on the critical-path chunk, in ns.
    pub act_stall_ns: f64,
    /// Refresh stall (tRFC) on the critical-path chunk, in nanoseconds.
    pub refresh_stall_ns: f64,
    /// Refreshes charged across all chunks.
    pub refreshes: usize,
    /// Row-buffer hits across all chunks.
    pub row_hits: usize,
    /// Row-buffer misses (clean activates) across all chunks.
    pub row_misses: usize,
    /// Row-buffer conflicts (extra precharge charged) across all chunks.
    pub row_conflicts: usize,
}

impl BankStateReplay {
    /// Fraction of classified commands that were row-buffer hits (0.0 when nothing
    /// was classified).
    pub fn row_buffer_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// What a chunk's sense amplifiers hold between commands, for the address-based
/// row-buffer classification.
#[derive(Debug, Clone, Copy, PartialEq)]
enum OpenRow {
    /// No address information: the trace start, or the previous command carried no
    /// row tag. Always classifies via the kind-transition fallback.
    Unknown,
    /// The previous command ended with a precharge that invalidated the latch for
    /// activation purposes (an AAP/AP restored its row and closed it).
    Closed,
    /// The latch still covers `rowtag` — the open data row after a `RD`/`WR` under
    /// the open-page policy, or the TRA triple whose majority result a `TRA` leaves
    /// in the sense amplifiers.
    Latched(u32),
}

/// Per-chunk replay cursor: the bank's open-row bookkeeping plus its private timeline.
#[derive(Debug, Clone)]
struct ChunkCursor {
    /// The chunk's finish time so far, in nanoseconds from broadcast start.
    time_ns: f64,
    /// Next refresh deadline on this chunk's bank.
    next_refresh_ns: f64,
    /// Kind of the previous command, for the addressless classification fallback.
    previous: Option<CommandKind>,
    /// Sense-amplifier state, for the address-based classification.
    open: OpenRow,
    /// Template latency walked so far (for the drained-history fallback).
    walked_latency_ns: f64,
    act_stall_ns: f64,
    refresh_stall_ns: f64,
    refreshes: usize,
    hits: usize,
    misses: usize,
    conflicts: usize,
}

impl ChunkCursor {
    fn new(t_refi_ns: f64) -> Self {
        ChunkCursor {
            time_ns: 0.0,
            next_refresh_ns: t_refi_ns,
            previous: None,
            open: OpenRow::Unknown,
            walked_latency_ns: 0.0,
            act_stall_ns: 0.0,
            refresh_stall_ns: 0.0,
            refreshes: 0,
            hits: 0,
            misses: 0,
            conflicts: 0,
        }
    }
}

/// Rank-wide ACTIVATE rate limiter: enforces tRRD spacing and the tFAW window across
/// every chunk of the broadcast (the chunks share one rank's command bus).
#[derive(Debug, Clone)]
struct ActivateWindow {
    last_act_ns: f64,
    /// Ring of the last [`FAW_DEPTH`] ACTIVATE issue times.
    ring: [f64; FAW_DEPTH],
    issued: usize,
}

impl ActivateWindow {
    fn new() -> Self {
        ActivateWindow {
            last_act_ns: f64::NEG_INFINITY,
            ring: [f64::NEG_INFINITY; FAW_DEPTH],
            issued: 0,
        }
    }

    /// Schedules one ACTIVATE that wants to issue at `want_ns`; returns the actual
    /// issue time (≥ `want_ns`).
    fn schedule(&mut self, want_ns: f64, timing: &BankTiming) -> f64 {
        let oldest = self.ring[self.issued % FAW_DEPTH];
        let issue = want_ns
            .max(self.last_act_ns + timing.t_rrd_ns)
            .max(oldest + timing.t_faw_ns);
        self.last_act_ns = issue;
        self.ring[self.issued % FAW_DEPTH] = issue;
        self.issued += 1;
        issue
    }
}

/// Classifies one command against the chunk's sense-amplifier state and returns the
/// outcome plus the state the command leaves behind.
///
/// Addressed commands ([`crate::DramCommand::row`] ≠ [`rowtag::UNKNOWN`]) compare row
/// tags: a `RD`/`WR` hits when the open-page latch holds its row, conflicts (+tRP)
/// when a *different* row is open, and misses against a closed or unknown bank,
/// leaving its row latched. A compute command's first activation hits only when the
/// latch still covers the row it opens ([`rowtag::latch_covers`] — equal tags, or a
/// B-group member of the latched TRA triple); an `AAP`/`AP` then closes the bank with
/// its trailing precharge while a `TRA` leaves the majority latched, which is exactly
/// the `TRA; AAP` idiom the kind convention hard-coded. Hits and misses never add
/// latency, so addressed classification refines the *decomposition* without moving
/// any replay latency on broadcast traces (which contain no `RD`/`WR`).
///
/// Addressless commands keep the [`RowBufferOutcome::classify`] convention
/// bit-for-bit and reset the state to [`OpenRow::Unknown`].
fn classify_command(
    open: OpenRow,
    previous: Option<CommandKind>,
    command: &DramCommand,
) -> (RowBufferOutcome, OpenRow) {
    if command.row == rowtag::UNKNOWN {
        return (
            RowBufferOutcome::classify(previous, command.kind),
            OpenRow::Unknown,
        );
    }
    let covered = match open {
        OpenRow::Latched(latch) => rowtag::latch_covers(latch, command.row),
        OpenRow::Closed | OpenRow::Unknown => false,
    };
    match command.kind {
        CommandKind::Read | CommandKind::Write => {
            let outcome = match open {
                _ if covered => RowBufferOutcome::Hit,
                OpenRow::Latched(_) => RowBufferOutcome::Conflict,
                OpenRow::Closed | OpenRow::Unknown => RowBufferOutcome::Miss,
            };
            (outcome, OpenRow::Latched(command.row))
        }
        CommandKind::ActivateActivatePrecharge | CommandKind::ActivatePrecharge => {
            let outcome = if covered {
                RowBufferOutcome::Hit
            } else {
                RowBufferOutcome::Miss
            };
            (outcome, OpenRow::Closed)
        }
        CommandKind::TripleRowActivate => {
            let outcome = if covered {
                RowBufferOutcome::Hit
            } else {
                RowBufferOutcome::Miss
            };
            (outcome, OpenRow::Latched(command.row))
        }
    }
}

/// Number of ACTIVATEs a command template issues and their nominal offsets (in ns)
/// from the command's start.
fn activate_offsets(command: &DramCommand, timing: &DramTiming) -> ([f64; 2], usize) {
    match command.kind {
        // AAP: the first ACTIVATE at command start, the second after the first row's
        // tRAS restoration.
        CommandKind::ActivateActivatePrecharge => ([0.0, timing.t_ras_ns], 2),
        // AP, TRA and conventional column accesses open one row each.
        CommandKind::ActivatePrecharge
        | CommandKind::TripleRowActivate
        | CommandKind::Read
        | CommandKind::Write => ([0.0, 0.0], 1),
    }
}

/// The bank-state replay engine: owns the template timing ([`DramTiming`]) and the
/// bank-interaction timing ([`BankTiming`]) and replays per-chunk command traces.
#[derive(Debug, Clone, PartialEq)]
pub struct BankStateModel {
    timing: DramTiming,
    bank: BankTiming,
}

impl BankStateModel {
    /// Creates a replay engine over the given timing models.
    pub fn new(timing: DramTiming, bank: BankTiming) -> Self {
        BankStateModel { timing, bank }
    }

    /// The command-template timing model.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// The bank-interaction timing model.
    pub fn bank_timing(&self) -> &BankTiming {
        &self.bank
    }

    /// Replays one broadcast's per-chunk traces against per-bank state, returning the
    /// modeled busy window and its decomposition.
    ///
    /// The chunks advance in lock-step rounds (command 0 of every chunk, then command
    /// 1, …) mirroring how the broadcast issues on hardware; within a round the chunks
    /// are visited in chunk order, so the rank-wide ACTIVATE serialization is
    /// deterministic. Commands whose per-command history was drained
    /// ([`CommandTrace::drain_history`]) cannot be classified; they are charged their
    /// exact analytic residual latency instead, which preserves both the total command
    /// count and the `replay ≥ analytic` lower-bound invariant.
    pub fn replay(&self, traces: &[CommandTrace]) -> BankStateReplay {
        let mut cursors: Vec<ChunkCursor> = traces
            .iter()
            .map(|_| ChunkCursor::new(self.bank.t_refi_ns))
            .collect();
        let mut window = ActivateWindow::new();
        let mut commands = 0usize;

        // Lock-step rounds over the retained per-command history.
        let histories: Vec<Vec<DramCommand>> =
            traces.iter().map(|t| t.commands().collect()).collect();
        let rounds = histories.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..rounds {
            for (chunk, history) in histories.iter().enumerate() {
                let Some(command) = history.get(round) else {
                    continue;
                };
                let cursor = &mut cursors[chunk];

                // Refresh interference: charge every deadline the timeline crossed.
                while cursor.time_ns >= cursor.next_refresh_ns {
                    cursor.time_ns += self.bank.t_rfc_ns;
                    cursor.refresh_stall_ns += self.bank.t_rfc_ns;
                    cursor.refreshes += 1;
                    cursor.next_refresh_ns += self.bank.t_refi_ns;
                }

                // Row-buffer outcome: address comparison when the command carries a
                // row tag, kind-transition fallback otherwise.
                let (outcome, open) = classify_command(cursor.open, cursor.previous, command);
                cursor.open = open;
                let conflict_ns = match outcome {
                    RowBufferOutcome::Hit => {
                        cursor.hits += 1;
                        0.0
                    }
                    RowBufferOutcome::Miss => {
                        cursor.misses += 1;
                        0.0
                    }
                    RowBufferOutcome::Conflict => {
                        cursor.conflicts += 1;
                        self.timing.t_rp_ns
                    }
                };

                // ACTIVATE serialization across the rank's command bus.
                let start = cursor.time_ns + conflict_ns;
                let (offsets, acts) = activate_offsets(command, &self.timing);
                let mut act_delay = 0.0;
                for &offset in offsets.iter().take(acts) {
                    let want = start + offset + act_delay;
                    let issued = window.schedule(want, &self.bank);
                    act_delay += issued - want;
                    cursor.act_stall_ns += issued - want;
                }

                cursor.time_ns = start + act_delay + command.latency_ns;
                cursor.walked_latency_ns += command.latency_ns;
                cursor.previous = Some(command.kind);
                commands += 1;
            }
        }

        // Drained-history fallback: commands the trace no longer reconstructs still
        // carry their aggregate latency; charge the residual so the replay never drops
        // below the analytic lower bound.
        for (cursor, trace) in cursors.iter_mut().zip(traces) {
            let residual = trace.total_latency_ns() - cursor.walked_latency_ns;
            if residual > 0.0 {
                cursor.time_ns += residual;
            }
            commands += trace.len() - trace.history_len();
        }

        // Critical path: the slowest chunk defines the busy window and contributes the
        // stall decomposition; classification counts aggregate over every chunk.
        let mut replay = BankStateReplay {
            chunks: traces.len(),
            commands,
            ..BankStateReplay::default()
        };
        let mut critical = f64::NEG_INFINITY;
        for cursor in &cursors {
            if cursor.time_ns > critical {
                critical = cursor.time_ns;
                replay.act_stall_ns = cursor.act_stall_ns;
                replay.refresh_stall_ns = cursor.refresh_stall_ns;
            }
            replay.refreshes += cursor.refreshes;
            replay.row_hits += cursor.hits;
            replay.row_misses += cursor.misses;
            replay.row_conflicts += cursor.conflicts;
        }
        replay.latency_ns = critical.max(0.0);
        replay
    }
}

impl Default for BankStateModel {
    fn default() -> Self {
        BankStateModel::new(DramTiming::default(), BankTiming::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{CommandCosts, CommandTrace};
    use crate::config::DramConfig;

    fn costs() -> CommandCosts {
        CommandCosts::new(&DramConfig::tiny())
    }

    fn trace_of(commands: &[DramCommand]) -> CommandTrace {
        let mut trace = CommandTrace::new();
        for c in commands {
            trace.push(c.clone());
        }
        trace
    }

    #[test]
    fn empty_replay_is_zero() {
        let model = BankStateModel::default();
        assert_eq!(model.replay(&[]), BankStateReplay::default());
        let replay = model.replay(&[CommandTrace::new()]);
        assert_eq!(replay.latency_ns, 0.0);
        assert_eq!(replay.chunks, 1);
        assert_eq!(replay.row_buffer_hit_rate(), 0.0);
    }

    #[test]
    fn single_chunk_replay_is_at_least_the_analytic_sum() {
        let c = costs();
        let trace = trace_of(&[
            c.aap().clone(),
            c.aap().clone(),
            c.tra().clone(),
            c.aap_tra().clone(),
        ]);
        let analytic = trace.total_latency_ns();
        let replay = BankStateModel::default().replay(&[trace]);
        assert!(replay.latency_ns >= analytic, "{replay:?} vs {analytic}");
        assert_eq!(replay.commands, 4);
        // TRA -> AAP is the hit idiom; the rest are misses.
        assert_eq!(replay.row_hits, 1);
        assert_eq!(replay.row_misses, 3);
        assert_eq!(replay.row_conflicts, 0);
    }

    #[test]
    fn streaming_reads_pay_row_conflicts() {
        let c = costs();
        let trace = trace_of(&[c.read().clone(), c.read().clone(), c.read().clone()]);
        let analytic = trace.total_latency_ns();
        let replay = BankStateModel::default().replay(&[trace]);
        assert_eq!(replay.row_conflicts, 2);
        assert_eq!(replay.row_misses, 1);
        // Two conflicts charge two extra precharges on top of serialization stalls.
        assert!(replay.latency_ns >= analytic + 2.0 * ddr4::T_RP_NS - 1e-9);
    }

    #[test]
    fn multi_chunk_activates_serialize_on_the_rank() {
        let c = costs();
        let per_chunk = [c.ap().clone(), c.ap().clone()];
        let traces: Vec<CommandTrace> = (0..4).map(|_| trace_of(&per_chunk)).collect();
        let solo = BankStateModel::default().replay(&traces[..1]);
        let fanned = BankStateModel::default().replay(&traces);
        // Same per-chunk work, but four banks contend for the ACTIVATE bus: the
        // critical path picks up tRRD/tFAW stall the solo run does not have.
        assert!(fanned.latency_ns > solo.latency_ns);
        assert!(fanned.act_stall_ns > 0.0);
        assert_eq!(fanned.chunks, 4);
        assert_eq!(fanned.commands, 8);
    }

    #[test]
    fn refresh_deadlines_stall_long_broadcasts() {
        let c = costs();
        // ~270 APs at 44.5 ns each crosses the 7.8 us refresh deadline.
        let commands: Vec<DramCommand> = (0..270).map(|_| c.ap().clone()).collect();
        let trace = trace_of(&commands);
        let analytic = trace.total_latency_ns();
        let replay = BankStateModel::default().replay(&[trace]);
        assert!(replay.refreshes >= 1, "{replay:?}");
        assert!(replay.refresh_stall_ns >= ddr4::T_RFC_NS);
        assert!(replay.latency_ns >= analytic + ddr4::T_RFC_NS - 1e-9);
    }

    #[test]
    fn drained_history_is_charged_at_analytic_cost() {
        let c = costs();
        let mut trace = trace_of(&[c.aap().clone(), c.aap().clone()]);
        let analytic = trace.total_latency_ns();
        trace.drain_history();
        let replay = BankStateModel::default().replay(&[trace]);
        // No history to classify, but the aggregate latency still counts in full.
        assert_eq!(replay.commands, 2);
        assert_eq!(
            replay.row_hits + replay.row_misses + replay.row_conflicts,
            0
        );
        assert!((replay.latency_ns - analytic).abs() < 1e-9);
    }

    #[test]
    fn replay_is_deterministic() {
        let c = costs();
        let traces: Vec<CommandTrace> = (0..3)
            .map(|_| trace_of(&[c.aap().clone(), c.tra().clone(), c.aap_tra().clone()]))
            .collect();
        let model = BankStateModel::default();
        let a = model.replay(&traces);
        let b = model.replay(&traces);
        assert_eq!(a, b);
        assert_eq!(a.latency_ns.to_bits(), b.latency_ns.to_bits());
    }

    #[test]
    fn hit_rate_is_a_fraction() {
        let c = costs();
        let trace = trace_of(&[c.tra().clone(), c.aap_tra().clone()]);
        let replay = BankStateModel::default().replay(&[trace]);
        assert!(replay.row_buffer_hit_rate() > 0.0);
        assert!(replay.row_buffer_hit_rate() <= 1.0);
    }

    #[test]
    fn addressed_commands_classify_by_row_not_convention() {
        let c = costs();
        // Streaming reads of the SAME row hit under the open-page policy; the
        // kind convention (exercised by `streaming_reads_pay_row_conflicts` above,
        // whose commands carry no addresses) would have charged conflicts.
        let same_row = trace_of(&[
            c.read().clone().with_row(rowtag::data(7)),
            c.read().clone().with_row(rowtag::data(7)),
            c.read().clone().with_row(rowtag::data(9)),
        ]);
        let replay = BankStateModel::default().replay(&[same_row]);
        assert_eq!(replay.row_misses, 1); // first open of row 7
        assert_eq!(replay.row_hits, 1); // row 7 again
        assert_eq!(replay.row_conflicts, 1); // row 9 closes row 7 first

        // A TRA latches its triple; an AAP whose first activation reads a member of
        // the triple hits, one reading an unrelated row misses.
        let tra_then_aap = trace_of(&[
            c.tra().clone().with_row(rowtag::tra(0, 1, 2)),
            c.aap().clone().with_row(rowtag::bgroup(0)),
            c.aap().clone().with_row(rowtag::data(4)),
        ]);
        let replay = BankStateModel::default().replay(&[tra_then_aap]);
        assert_eq!(replay.row_hits, 1);
        assert_eq!(replay.row_misses, 2);
        assert_eq!(replay.row_conflicts, 0);
        // Hits and misses never add latency: only conflicts charge +tRP, so an
        // address-refined broadcast decomposition keeps the replay latency.
    }

    #[test]
    fn default_bank_timing_uses_the_canonical_constants() {
        let bank = BankTiming::ddr4_2400();
        assert_eq!(bank.t_rrd_ns, ddr4::T_RRD_NS);
        assert_eq!(bank.t_faw_ns, ddr4::T_FAW_NS);
        assert_eq!(bank.t_refi_ns, ddr4::T_REFI_NS);
        assert_eq!(bank.t_rfc_ns, ddr4::T_RFC_NS);
    }
}
