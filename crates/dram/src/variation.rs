//! Process-variation reliability model for triple-row activation.
//!
//! The SIMDRAM paper evaluates whether in-DRAM majority computation remains correct when
//! manufacturing process variation grows as DRAM technology scales to smaller nodes. The
//! mechanism that can fail is charge sharing during a triple-row activation (TRA): three
//! cells share charge on a bitline, and the sense amplifier must resolve the deviation from
//! `Vdd/2` in the direction of the majority value. In the worst case (a 2-vs-1 split) the
//! nominal deviation is only `Vdd/6`; cell-capacitance mismatch, incomplete restoration and
//! sense-amplifier offset eat into that margin.
//!
//! This module implements a Monte Carlo model of that failure mechanism:
//!
//! * each of the three cells contributes its charge with a multiplicative Gaussian error
//!   whose standard deviation grows as the technology node shrinks;
//! * the sense amplifier adds a Gaussian input-referred offset;
//! * a TRA fails when the perturbed bitline deviation has the wrong sign (or is below the
//!   sense threshold).
//!
//! The model reproduces the qualitative result of the paper: with realistic variation the
//! worst-case (2-vs-1) margin is preserved and SIMDRAM operations execute correctly, and
//! failures only appear when variation is pushed far beyond what the smallest nodes exhibit.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// DRAM technology nodes considered in the reliability sweep, with the relative
/// cell-to-cell variation (one standard deviation, as a fraction of nominal cell charge)
/// assumed for each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechnologyNode {
    /// Mature ~22 nm class node.
    Nm22,
    /// ~17 nm class node.
    Nm17,
    /// ~14 nm class node.
    Nm14,
    /// ~10 nm class node (smallest production node considered).
    Nm10,
    /// Hypothetical ~7 nm class node, beyond current production.
    Nm7,
}

impl TechnologyNode {
    /// All nodes from largest to smallest.
    pub const ALL: [TechnologyNode; 5] = [
        TechnologyNode::Nm22,
        TechnologyNode::Nm17,
        TechnologyNode::Nm14,
        TechnologyNode::Nm10,
        TechnologyNode::Nm7,
    ];

    /// Human-readable name of the node.
    pub fn name(self) -> &'static str {
        match self {
            TechnologyNode::Nm22 => "22nm",
            TechnologyNode::Nm17 => "17nm",
            TechnologyNode::Nm14 => "14nm",
            TechnologyNode::Nm10 => "10nm",
            TechnologyNode::Nm7 => "7nm",
        }
    }

    /// Relative cell-charge variation (σ / nominal) assumed at this node.
    pub fn cell_sigma(self) -> f64 {
        match self {
            TechnologyNode::Nm22 => 0.02,
            TechnologyNode::Nm17 => 0.03,
            TechnologyNode::Nm14 => 0.04,
            TechnologyNode::Nm10 => 0.05,
            TechnologyNode::Nm7 => 0.07,
        }
    }
}

/// Parameters of the TRA failure model.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationModel {
    /// Relative standard deviation of each cell's stored charge (fraction of nominal).
    pub cell_sigma: f64,
    /// Input-referred sense-amplifier offset, as a fraction of `Vdd`.
    pub sense_offset_sigma: f64,
    /// Minimum bitline deviation (fraction of `Vdd`) the sense amplifier needs to resolve
    /// reliably; deviations smaller than this are treated as failures.
    pub sense_threshold: f64,
    /// Fraction of full charge actually restored into the cells before the TRA
    /// (models incomplete restoration of previous operations; 1.0 = fully restored).
    pub restoration: f64,
}

impl Default for VariationModel {
    fn default() -> Self {
        VariationModel {
            cell_sigma: 0.04,
            sense_offset_sigma: 0.01,
            sense_threshold: 0.005,
            restoration: 1.0,
        }
    }
}

impl VariationModel {
    /// Builds the model for a given technology node using the node's nominal cell variation.
    pub fn for_node(node: TechnologyNode) -> Self {
        VariationModel {
            cell_sigma: node.cell_sigma(),
            ..VariationModel::default()
        }
    }

    /// Builds a model with an explicit relative cell variation (used for sweeps).
    pub fn with_cell_sigma(cell_sigma: f64) -> Self {
        VariationModel {
            cell_sigma,
            ..VariationModel::default()
        }
    }

    /// Monte Carlo estimate of the probability that a single TRA produces a wrong bit, for
    /// the *worst-case* input pattern (two cells against one).
    ///
    /// `trials` Monte Carlo samples are drawn with the deterministic seed `seed`, so results
    /// are reproducible.
    pub fn tra_failure_probability(&self, trials: usize, seed: u64) -> f64 {
        self.failure_probability_for_pattern(2, trials, seed)
    }

    /// Monte Carlo estimate of the single-TRA failure probability when `ones` of the three
    /// participating cells store a logic one (`ones` in `0..=3`).
    ///
    /// Patterns with `ones == 0` or `ones == 3` have a much larger margin (`Vdd/2`) than the
    /// 2-vs-1 patterns (`Vdd/6`), which is why the worst case drives reliability.
    ///
    /// # Panics
    ///
    /// Panics if `ones > 3` or `trials == 0`.
    pub fn failure_probability_for_pattern(&self, ones: usize, trials: usize, seed: u64) -> f64 {
        assert!(ones <= 3, "a TRA involves exactly three cells");
        assert!(trials > 0, "at least one Monte Carlo trial is required");
        let mut rng = StdRng::seed_from_u64(seed);
        let majority_is_one = ones >= 2;
        let mut failures = 0usize;
        for _ in 0..trials {
            // Each cell stores Vdd (one) or 0 (zero) scaled by restoration, with
            // multiplicative charge variation. The bitline is precharged to Vdd/2 and the
            // three cells plus the bitline capacitance share charge; with the standard
            // assumption that cell capacitance ≈ bitline capacitance / 3, the settled
            // deviation is proportional to the mean cell voltage minus Vdd/2.
            let mut sum = 0.0;
            for i in 0..3 {
                let stored = if i < ones { 1.0 } else { 0.0 };
                let noise = gaussian(&mut rng) * self.cell_sigma;
                sum += (stored * self.restoration) * (1.0 + noise);
            }
            let mean_cell_v = sum / 3.0;
            let deviation = mean_cell_v - 0.5;
            let offset = gaussian(&mut rng) * self.sense_offset_sigma;
            let sensed = deviation + offset;
            let resolved_one = sensed > 0.0;
            let too_small = sensed.abs() < self.sense_threshold;
            if too_small || resolved_one != majority_is_one {
                failures += 1;
            }
        }
        failures as f64 / trials as f64
    }

    /// Probability that an operation consisting of `tra_count` TRAs per SIMD lane completes
    /// without any failing TRA, given a per-TRA failure probability `p_tra`.
    pub fn operation_success_probability(p_tra: f64, tra_count: usize) -> f64 {
        (1.0 - p_tra).powi(tra_count as i32)
    }
}

/// A single point of the reliability sweep reported by [`reliability_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityPoint {
    /// Relative cell variation (σ / nominal charge) of this point.
    pub cell_sigma: f64,
    /// Worst-case (2-vs-1) per-TRA failure probability.
    pub tra_failure_probability: f64,
    /// Probability that a 32-bit addition (one of the TRA-heaviest basic operations)
    /// completes correctly in one SIMD lane.
    pub add32_success_probability: f64,
}

/// Sweeps the relative cell variation from `0` to `max_sigma` in `steps` steps and reports
/// the per-TRA and per-operation failure behaviour. `tra_per_add32` is the number of TRAs a
/// 32-bit addition μProgram issues (obtained from the μProgram generator).
pub fn reliability_sweep(
    max_sigma: f64,
    steps: usize,
    trials: usize,
    tra_per_add32: usize,
    seed: u64,
) -> Vec<ReliabilityPoint> {
    (0..=steps)
        .map(|i| {
            let sigma = max_sigma * i as f64 / steps as f64;
            let model = VariationModel::with_cell_sigma(sigma);
            let p = model.tra_failure_probability(trials, seed.wrapping_add(i as u64));
            ReliabilityPoint {
                cell_sigma: sigma,
                tra_failure_probability: p,
                add32_success_probability: VariationModel::operation_success_probability(
                    p,
                    tra_per_add32,
                ),
            }
        })
        .collect()
}

/// Draws a standard-normal sample using the Box–Muller transform.
///
/// Implemented locally so the crate only depends on `rand` (not `rand_distr`).
fn gaussian(rng: &mut impl RngExt) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_variation_never_fails() {
        let model = VariationModel::with_cell_sigma(0.0);
        for ones in 0..=3 {
            assert_eq!(model.failure_probability_for_pattern(ones, 2_000, 7), 0.0);
        }
    }

    #[test]
    fn realistic_nodes_are_reliable() {
        // The paper's conclusion: correct operation is guaranteed down to the smallest nodes.
        for node in TechnologyNode::ALL {
            let model = VariationModel::for_node(node);
            let p = model.tra_failure_probability(5_000, 42);
            assert!(p < 1e-3, "{} unexpectedly unreliable: p = {p}", node.name());
        }
    }

    #[test]
    fn extreme_variation_does_fail() {
        let model = VariationModel::with_cell_sigma(0.5);
        let p = model.tra_failure_probability(5_000, 42);
        assert!(
            p > 0.01,
            "expected visible failures at 50% variation, got {p}"
        );
    }

    #[test]
    fn worst_case_pattern_is_two_vs_one() {
        let model = VariationModel::with_cell_sigma(0.25);
        let p_unanimous = model.failure_probability_for_pattern(3, 5_000, 1);
        let p_split = model.failure_probability_for_pattern(2, 5_000, 1);
        assert!(p_split >= p_unanimous);
    }

    #[test]
    fn failure_probability_is_monotonic_in_sigma() {
        let sweep = reliability_sweep(0.4, 8, 3_000, 128, 9);
        assert_eq!(sweep.len(), 9);
        assert!(sweep.first().unwrap().tra_failure_probability <= 1e-9);
        assert!(
            sweep.last().unwrap().tra_failure_probability
                >= sweep[sweep.len() / 2].tra_failure_probability
        );
        // Operation success degrades with per-TRA failure probability.
        for point in &sweep {
            assert!(point.add32_success_probability <= 1.0);
            assert!(point.add32_success_probability >= 0.0);
        }
    }

    #[test]
    fn operation_success_compounds_per_tra() {
        let p = VariationModel::operation_success_probability(0.01, 100);
        assert!((p - 0.99f64.powi(100)).abs() < 1e-12);
        assert_eq!(
            VariationModel::operation_success_probability(0.0, 1_000),
            1.0
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let model = VariationModel::with_cell_sigma(0.2);
        let a = model.tra_failure_probability(2_000, 123);
        let b = model.tra_failure_probability(2_000, 123);
        assert_eq!(a, b);
    }
}
