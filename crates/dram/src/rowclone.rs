//! In-DRAM bulk-copy mechanisms (RowClone, LISA, FIGARO).
//!
//! SIMDRAM relies on row-to-row copies for two purposes: moving operands in and out of the
//! B-group inside a subarray (intra-subarray, RowClone-FPM, a single `AAP`), and moving data
//! between subarrays when operands do not reside in a compute subarray. The paper cites
//! three inter-subarray mechanisms with very different costs — RowClone-PSM (pipelined
//! serial copy through the channel), LISA (linked subarrays) and FIGARO (fine-grained
//! relocation). This module provides an analytic model of those mechanisms so the framework
//! can charge a realistic cost for data placement decisions.

use crate::config::DramConfig;

/// The mechanism used to copy a row between two subarrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyMechanism {
    /// RowClone Fast-Parallel-Mode: only valid within one subarray (two activations).
    RowCloneFpm,
    /// RowClone Pipelined-Serial-Mode: copies cache line by cache line over the internal bus.
    RowClonePsm,
    /// LISA: links neighbouring subarrays with isolation transistors for fast row transfer.
    Lisa,
    /// FIGARO: fine-grained (column-granularity) relocation through the shared global buffer.
    Figaro,
}

/// Analytic cost model for inter- and intra-subarray row copies.
#[derive(Debug, Clone, PartialEq)]
pub struct InterSubarrayCopy {
    row_bytes: usize,
    aap_ns: f64,
    ap_ns: f64,
    cacheline_transfer_ns: f64,
    energy_per_bit_nj: f64,
    act_pre_nj: f64,
}

impl InterSubarrayCopy {
    /// Builds the copy cost model from a DRAM configuration.
    pub fn new(config: &DramConfig) -> Self {
        InterSubarrayCopy {
            row_bytes: config.row_bytes(),
            aap_ns: config.timing.aap_ns(),
            ap_ns: config.timing.ap_ns(),
            // Moving one 64-byte cache line over the internal bus takes roughly tCCD.
            cacheline_transfer_ns: config.timing.t_ccd_ns,
            energy_per_bit_nj: config.energy.array_access_nj_per_bit,
            act_pre_nj: config.energy.act_pre_nj,
        }
    }

    /// Latency in nanoseconds of copying one full row with the given mechanism.
    pub fn latency_ns(&self, mechanism: CopyMechanism) -> f64 {
        match mechanism {
            CopyMechanism::RowCloneFpm => self.aap_ns,
            CopyMechanism::RowClonePsm => {
                // One activation per subarray plus one cache-line transfer per 64 bytes.
                let lines = self.row_bytes.div_ceil(64) as f64;
                2.0 * self.ap_ns + lines * self.cacheline_transfer_ns
            }
            CopyMechanism::Lisa => {
                // LISA chains row-buffer movements between adjacent subarrays; ~3 activations.
                3.0 * self.ap_ns
            }
            CopyMechanism::Figaro => {
                // FIGARO moves column-granularity chunks through the global row buffer;
                // modelled as PSM with half the per-line cost.
                let lines = self.row_bytes.div_ceil(64) as f64;
                2.0 * self.ap_ns + 0.5 * lines * self.cacheline_transfer_ns
            }
        }
    }

    /// Energy in nanojoules of copying one full row with the given mechanism.
    pub fn energy_nj(&self, mechanism: CopyMechanism) -> f64 {
        let bits = (self.row_bytes * 8) as f64;
        match mechanism {
            CopyMechanism::RowCloneFpm => 2.0 * self.act_pre_nj,
            CopyMechanism::RowClonePsm => 2.0 * self.act_pre_nj + bits * self.energy_per_bit_nj,
            CopyMechanism::Lisa => 3.0 * self.act_pre_nj,
            CopyMechanism::Figaro => 2.0 * self.act_pre_nj + 0.5 * bits * self.energy_per_bit_nj,
        }
    }

    /// The cheapest mechanism available for a copy between `src_subarray` and
    /// `dst_subarray` (FPM within a subarray, LISA between adjacent subarrays, PSM
    /// otherwise).
    pub fn best_mechanism(&self, src_subarray: usize, dst_subarray: usize) -> CopyMechanism {
        if src_subarray == dst_subarray {
            CopyMechanism::RowCloneFpm
        } else if src_subarray.abs_diff(dst_subarray) == 1 {
            CopyMechanism::Lisa
        } else {
            CopyMechanism::RowClonePsm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpm_is_fastest_and_cheapest() {
        let model = InterSubarrayCopy::new(&DramConfig::default());
        for mech in [
            CopyMechanism::RowClonePsm,
            CopyMechanism::Lisa,
            CopyMechanism::Figaro,
        ] {
            assert!(model.latency_ns(CopyMechanism::RowCloneFpm) < model.latency_ns(mech));
            assert!(model.energy_nj(CopyMechanism::RowCloneFpm) <= model.energy_nj(mech));
        }
    }

    #[test]
    fn psm_scales_with_row_size() {
        let big = InterSubarrayCopy::new(&DramConfig::default());
        let small = InterSubarrayCopy::new(&DramConfig::tiny());
        assert!(
            big.latency_ns(CopyMechanism::RowClonePsm)
                > small.latency_ns(CopyMechanism::RowClonePsm)
        );
    }

    #[test]
    fn figaro_is_cheaper_than_psm() {
        let model = InterSubarrayCopy::new(&DramConfig::default());
        assert!(
            model.latency_ns(CopyMechanism::Figaro) < model.latency_ns(CopyMechanism::RowClonePsm)
        );
        assert!(
            model.energy_nj(CopyMechanism::Figaro) < model.energy_nj(CopyMechanism::RowClonePsm)
        );
    }

    #[test]
    fn best_mechanism_prefers_locality() {
        let model = InterSubarrayCopy::new(&DramConfig::default());
        assert_eq!(model.best_mechanism(3, 3), CopyMechanism::RowCloneFpm);
        assert_eq!(model.best_mechanism(3, 4), CopyMechanism::Lisa);
        assert_eq!(model.best_mechanism(0, 17), CopyMechanism::RowClonePsm);
    }
}
