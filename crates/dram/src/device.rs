//! The top-level DRAM device: a set of banks sharing one channel.

use crate::bank::Bank;
use crate::config::DramConfig;
use crate::error::{DramError, Result};
use crate::stats::DeviceStats;

/// A DRAM device (one rank on one channel) made of [`Bank`]s.
///
/// The device is the unit handed to the SIMDRAM control unit: bbop instructions name a set
/// of banks/subarrays inside one device, and bank-level parallelism multiplies throughput
/// because every bank can execute a μProgram independently.
#[derive(Debug, Clone)]
pub struct DramDevice {
    config: DramConfig,
    banks: Vec<Bank>,
}

impl DramDevice {
    /// Creates a device with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if the configuration fails validation.
    pub fn new(config: DramConfig) -> Result<Self> {
        config.validate()?;
        let banks = (0..config.banks).map(|_| Bank::new(&config)).collect();
        Ok(DramDevice { config, banks })
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Immutable access to a bank.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankOutOfRange`] if the index is invalid.
    pub fn bank(&self, index: usize) -> Result<&Bank> {
        self.banks.get(index).ok_or(DramError::BankOutOfRange {
            bank: index,
            banks: self.banks.len(),
        })
    }

    /// Mutable access to a bank.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankOutOfRange`] if the index is invalid.
    pub fn bank_mut(&mut self, index: usize) -> Result<&mut Bank> {
        let banks = self.banks.len();
        self.banks
            .get_mut(index)
            .ok_or(DramError::BankOutOfRange { bank: index, banks })
    }

    /// Iterates over the banks.
    pub fn iter(&self) -> impl Iterator<Item = &Bank> {
        self.banks.iter()
    }

    /// Iterates mutably over the banks.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Bank> {
        self.banks.iter_mut()
    }

    /// Aggregates the command traces of every subarray into device-level statistics.
    pub fn stats(&self) -> DeviceStats {
        let mut stats = DeviceStats::default();
        for bank in &self.banks {
            for sa in bank.iter() {
                stats.absorb_trace(sa.trace());
            }
        }
        stats
    }

    /// Clears every subarray's command trace.
    pub fn reset_stats(&mut self) {
        for bank in &mut self.banks {
            bank.reset_traces();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrow::BitRow;
    use crate::command::CommandKind;

    #[test]
    fn device_has_configured_banks() {
        let device = DramDevice::new(DramConfig::tiny()).unwrap();
        assert_eq!(device.bank_count(), 2);
        assert!(device.bank(5).is_err());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = DramConfig::tiny();
        cfg.banks = 0;
        assert!(DramDevice::new(cfg).is_err());
    }

    #[test]
    fn stats_aggregate_across_banks() {
        let mut device = DramDevice::new(DramConfig::tiny()).unwrap();
        let pattern = BitRow::ones(256);
        device
            .bank_mut(0)
            .unwrap()
            .subarray_mut(0)
            .unwrap()
            .write_row(0, &pattern);
        device
            .bank_mut(1)
            .unwrap()
            .subarray_mut(1)
            .unwrap()
            .write_row(0, &pattern);
        let stats = device.stats();
        assert_eq!(stats.count(CommandKind::Write), 2);
        device.reset_stats();
        assert_eq!(device.stats().total_commands(), 0);
    }
}
