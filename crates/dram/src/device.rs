//! The top-level DRAM device: a set of banks sharing one channel.

use std::collections::HashMap;

use crate::bank::Bank;
use crate::config::DramConfig;
use crate::error::{DramError, Result};
use crate::fault::FaultModel;
use crate::stats::DeviceStats;
use crate::subarray::Subarray;

/// A DRAM device (one rank on one channel) made of [`Bank`]s.
///
/// The device is the unit handed to the SIMDRAM control unit: bbop instructions name a set
/// of banks/subarrays inside one device, and bank-level parallelism multiplies throughput
/// because every bank can execute a μProgram independently.
#[derive(Debug, Clone)]
pub struct DramDevice {
    config: DramConfig,
    banks: Vec<Bank>,
}

impl DramDevice {
    /// Creates a device with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if the configuration fails validation.
    pub fn new(config: DramConfig) -> Result<Self> {
        config.validate()?;
        let banks = (0..config.banks).map(|_| Bank::new(&config)).collect();
        Ok(DramDevice { config, banks })
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Immutable access to a bank.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankOutOfRange`] if the index is invalid.
    pub fn bank(&self, index: usize) -> Result<&Bank> {
        self.banks.get(index).ok_or(DramError::BankOutOfRange {
            bank: index,
            banks: self.banks.len(),
        })
    }

    /// Mutable access to a bank.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankOutOfRange`] if the index is invalid.
    pub fn bank_mut(&mut self, index: usize) -> Result<&mut Bank> {
        let banks = self.banks.len();
        self.banks
            .get_mut(index)
            .ok_or(DramError::BankOutOfRange { bank: index, banks })
    }

    /// Borrows several subarrays mutably at once, one `&mut` per `(bank, subarray)`
    /// coordinate, returned in request order.
    ///
    /// This is the disjoint-borrow API that makes broadcast execution parallelizable: a
    /// μProgram broadcast names the participating subarrays up front, obtains independent
    /// mutable access to each, and can then execute every chunk on its own thread (the
    /// borrows are `Send`, and each points at distinct state). The partitioning is built on
    /// safe slice splitting of the bank/subarray vectors — no `unsafe`, no aliasing.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankOutOfRange`] / [`DramError::SubarrayOutOfRange`] for an
    /// invalid coordinate, and [`DramError::AliasedSubarray`] if the same coordinate
    /// appears twice.
    ///
    /// # Examples
    ///
    /// ```
    /// use simdram_dram::{BitRow, DramConfig, DramDevice, RowAddr};
    ///
    /// let mut device = DramDevice::new(DramConfig::tiny())?;
    /// // One exclusive borrow per participating subarray, across banks.
    /// let mut sas = device.subarrays_mut(&[(0, 0), (0, 1), (1, 0)])?;
    /// for sa in &mut sas {
    ///     sa.write_row(0, &BitRow::ones(256));
    /// }
    /// assert_eq!(device.bank(1)?.subarray(0)?.peek(RowAddr::Data(0))?, BitRow::ones(256));
    /// # Ok::<(), simdram_dram::DramError>(())
    /// ```
    pub fn subarrays_mut(&mut self, coords: &[(usize, usize)]) -> Result<Vec<&mut Subarray>> {
        // One validation pass builds both the coordinate -> request-position map (insert
        // detects duplicates) and the per-bank index groups, so the whole partition is
        // O(coords + participating subarrays) — this runs on every machine operation.
        // Validating up front also means the per-bank delegation below cannot fail and
        // every error carries the real bank index.
        let banks = self.banks.len();
        let mut slot_of: HashMap<(usize, usize), usize> = HashMap::with_capacity(coords.len());
        let mut by_bank: Vec<Vec<usize>> = vec![Vec::new(); banks];
        for (pos, &(bank, subarray)) in coords.iter().enumerate() {
            if bank >= banks {
                return Err(DramError::BankOutOfRange { bank, banks });
            }
            let subarrays = self.banks[bank].subarray_count();
            if subarray >= subarrays {
                return Err(DramError::SubarrayOutOfRange {
                    subarray,
                    subarrays,
                });
            }
            if slot_of.insert((bank, subarray), pos).is_some() {
                return Err(DramError::AliasedSubarray {
                    bank: Some(bank),
                    subarray,
                });
            }
            by_bank[bank].push(subarray);
        }
        let mut slots: Vec<Option<&mut Subarray>> = Vec::with_capacity(coords.len());
        slots.resize_with(coords.len(), || None);
        for (b, bank) in self.banks.iter_mut().enumerate() {
            if by_bank[b].is_empty() {
                continue;
            }
            // Bank::subarrays_mut returns the borrows in `by_bank[b]` order.
            for (sa, &s) in bank
                .subarrays_mut(&by_bank[b])?
                .into_iter()
                .zip(&by_bank[b])
            {
                slots[slot_of[&(b, s)]] = Some(sa);
            }
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("every validated coordinate was visited"))
            .collect())
    }

    /// Iterates over the banks.
    pub fn iter(&self) -> impl Iterator<Item = &Bank> {
        self.banks.iter()
    }

    /// Iterates mutably over the banks.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Bank> {
        self.banks.iter_mut()
    }

    /// Aggregates the command traces of every subarray into device-level statistics.
    pub fn stats(&self) -> DeviceStats {
        let mut stats = DeviceStats::default();
        for bank in &self.banks {
            for sa in bank.iter() {
                stats.absorb_trace(sa.trace());
                stats.add_injected_faults(sa.faults_injected());
            }
        }
        stats
    }

    /// Installs `model`'s per-subarray fault streams into every subarray (clearing any
    /// previous streams when the model is [`FaultModel::Off`]). Subarrays are indexed
    /// bank-major — `bank × subarrays_per_bank + subarray` — matching how the compute
    /// layer linearizes chunk coordinates, so a device-level seed reproduces per-chunk.
    pub fn install_faults(&mut self, model: &FaultModel) {
        let columns = self.config.columns_per_row;
        let per_bank = self.config.subarrays_per_bank;
        for (b, bank) in self.banks.iter_mut().enumerate() {
            for (s, sa) in bank.iter_mut().enumerate() {
                sa.install_fault_state(model.state_for(b * per_bank + s, columns));
            }
        }
    }

    /// Total bits flipped by fault injection across the device (0 with faults off).
    pub fn injected_faults(&self) -> u64 {
        self.banks
            .iter()
            .flat_map(Bank::iter)
            .map(Subarray::faults_injected)
            .sum()
    }

    /// Clears every subarray's command trace.
    pub fn reset_stats(&mut self) {
        for bank in &mut self.banks {
            bank.reset_traces();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrow::BitRow;
    use crate::command::CommandKind;

    #[test]
    fn device_has_configured_banks() {
        let device = DramDevice::new(DramConfig::tiny()).unwrap();
        assert_eq!(device.bank_count(), 2);
        assert!(device.bank(5).is_err());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = DramConfig::tiny();
        cfg.banks = 0;
        assert!(DramDevice::new(cfg).is_err());
    }

    #[test]
    fn subarrays_mut_spans_banks_and_preserves_request_order() {
        let mut device = DramDevice::new(DramConfig::tiny()).unwrap();
        let pattern = BitRow::splat_word(0xACE, 256);
        {
            let mut sas = device.subarrays_mut(&[(1, 1), (0, 0)]).unwrap();
            assert_eq!(sas.len(), 2);
            sas[0].write_row(5, &pattern); // (1, 1) — request order, not device order
            sas[1].write_row(6, &pattern); // (0, 0)
        }
        use crate::subarray::RowAddr;
        let probe = |d: &DramDevice, b: usize, s: usize, r: usize| {
            d.bank(b)
                .unwrap()
                .subarray(s)
                .unwrap()
                .peek(RowAddr::Data(r))
                .unwrap()
        };
        assert_eq!(probe(&device, 1, 1, 5), pattern);
        assert_eq!(probe(&device, 0, 0, 6), pattern);
        assert_ne!(probe(&device, 0, 0, 5), pattern);
    }

    #[test]
    fn subarrays_mut_rejects_aliased_and_invalid_coordinates() {
        let mut device = DramDevice::new(DramConfig::tiny()).unwrap();
        assert!(matches!(
            device.subarrays_mut(&[(5, 0)]),
            Err(DramError::BankOutOfRange { bank: 5, .. })
        ));
        assert!(matches!(
            device.subarrays_mut(&[(0, 9)]),
            Err(DramError::SubarrayOutOfRange { subarray: 9, .. })
        ));
        assert!(matches!(
            device.subarrays_mut(&[(0, 0), (1, 0), (0, 0)]),
            Err(DramError::AliasedSubarray {
                bank: Some(0),
                subarray: 0
            })
        ));
        assert!(device.subarrays_mut(&[]).unwrap().is_empty());
    }

    #[test]
    fn stats_aggregate_across_banks() {
        let mut device = DramDevice::new(DramConfig::tiny()).unwrap();
        let pattern = BitRow::ones(256);
        device
            .bank_mut(0)
            .unwrap()
            .subarray_mut(0)
            .unwrap()
            .write_row(0, &pattern);
        device
            .bank_mut(1)
            .unwrap()
            .subarray_mut(1)
            .unwrap()
            .write_row(0, &pattern);
        let stats = device.stats();
        assert_eq!(stats.count(CommandKind::Write), 2);
        device.reset_stats();
        assert_eq!(device.stats().total_commands(), 0);
    }
}
