//! Energy model for DRAM commands and in-DRAM compute primitives.
//!
//! The SIMDRAM/Ambit evaluations derive energy from per-command costs: every ACTIVATE +
//! PRECHARGE pair costs a fixed amount of energy (dominated by charging the wordline and
//! the bitlines of an 8 KiB row), and data transfers over the channel cost energy per bit.
//! The defaults below follow the values reported for DDR4 in the Ambit and SIMDRAM papers
//! (on the order of a few nanojoules per row activation and a few picojoules per bit moved
//! over the channel). Absolute numbers are configuration constants; the experiments only
//! rely on the *relative* costs (an AAP costs roughly twice an AP, channel transfers
//! dominate CPU-side energy).

/// Per-command and per-bit energy costs, in nanojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy of one ACTIVATE + PRECHARGE of a single row (nJ).
    pub act_pre_nj: f64,
    /// Additional energy of the second ACTIVATE in an AAP (nJ).
    pub second_act_nj: f64,
    /// Extra energy of a triple-row activation relative to a single activation (three
    /// wordlines are raised and the bitlines swing with three cells sharing charge), in nJ.
    pub tra_extra_nj: f64,
    /// Energy per bit read or written over the memory channel (nJ/bit).
    pub channel_nj_per_bit: f64,
    /// Energy per bit for an on-DIMM read/write access that does not cross the channel
    /// (used by the transposition unit), in nJ/bit.
    pub array_access_nj_per_bit: f64,
    /// Static/background power of the DRAM device in watts, charged per nanosecond of
    /// occupancy when computing energy for a command trace.
    pub background_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::DDR4
    }
}

impl EnergyModel {
    /// The canonical DDR4 per-command energy costs (single source of truth, mirroring
    /// [`crate::timing::ddr4`] for the timing side).
    pub const DDR4: EnergyModel = EnergyModel {
        // ~2.5 nJ to activate + precharge an 8 KiB row (DDR4, per Ambit's estimates).
        act_pre_nj: 2.5,
        // The second activation of an AAP re-drives the bitlines into the target row.
        second_act_nj: 1.5,
        // TRA raises three wordlines simultaneously.
        tra_extra_nj: 0.6,
        // ~4 pJ/bit over the off-chip channel.
        channel_nj_per_bit: 0.004,
        // ~1 pJ/bit for internal accesses that stay on the DIMM.
        array_access_nj_per_bit: 0.001,
        background_w: 0.25,
    };

    /// Creates the default DDR4 energy model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Energy of one `AP` command (single- or triple-row activation followed by precharge).
    ///
    /// `triple` selects whether three wordlines were raised (triple-row activation).
    pub fn ap_nj(&self, triple: bool) -> f64 {
        if triple {
            self.act_pre_nj + self.tra_extra_nj
        } else {
            self.act_pre_nj
        }
    }

    /// Energy of one `AAP` command (copy through the sense amplifiers).
    ///
    /// `triple_first` selects whether the first activation was a triple-row activation
    /// (Ambit issues `AAP` with a TRA source address to copy the majority result out).
    pub fn aap_nj(&self, triple_first: bool) -> f64 {
        self.ap_nj(triple_first) + self.second_act_nj
    }

    /// Energy of moving `bits` bits across the off-chip channel.
    pub fn channel_transfer_nj(&self, bits: usize) -> f64 {
        self.channel_nj_per_bit * bits as f64
    }

    /// Energy of accessing `bits` bits inside the DIMM without crossing the channel.
    pub fn array_access_nj(&self, bits: usize) -> f64 {
        self.array_access_nj_per_bit * bits as f64
    }

    /// Background (static) energy for a busy period of `ns` nanoseconds.
    pub fn background_nj(&self, ns: f64) -> f64 {
        // 1 W · 1 ns = 1 nJ, so watts × ns gives nJ directly.
        self.background_w * ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aap_costs_more_than_ap() {
        let e = EnergyModel::default();
        assert!(e.aap_nj(false) > e.ap_nj(false));
        assert!(e.aap_nj(true) > e.aap_nj(false));
        assert!(e.ap_nj(true) > e.ap_nj(false));
    }

    #[test]
    fn channel_transfer_scales_linearly() {
        let e = EnergyModel::default();
        assert!((e.channel_transfer_nj(1000) - 1000.0 * e.channel_nj_per_bit).abs() < 1e-12);
        assert!(e.channel_transfer_nj(0) == 0.0);
    }

    #[test]
    fn internal_access_is_cheaper_than_channel() {
        let e = EnergyModel::default();
        assert!(e.array_access_nj(4096) < e.channel_transfer_nj(4096));
    }

    #[test]
    fn background_energy_is_watts_times_ns() {
        let e = EnergyModel::default();
        assert!((e.background_nj(100.0) - 25.0).abs() < 1e-12);
    }
}
