//! # simdram-dram — the processing-using-DRAM substrate
//!
//! This crate implements the DRAM substrate that the SIMDRAM framework (ASPLOS 2021)
//! computes on. It is a *functional + analytical* simulator:
//!
//! * **Functional**: every DRAM row is a real bit vector ([`BitRow`]), and the Ambit-style
//!   in-DRAM primitives — triple-row activation (bitwise majority), dual-contact cells
//!   (bitwise NOT) and RowClone copies (`AAP`/`AP` command pairs) — actually transform the
//!   stored bits, so computations executed on the model can be checked for correctness.
//! * **Analytical**: every issued command is traced and charged its DDR timing
//!   ([`DramTiming`]) and energy ([`EnergyModel`]) so that throughput and energy-efficiency
//!   experiments can be reproduced from command counts, exactly like the paper derives them.
//!
//! The crate also contains the process-variation reliability model
//! ([`variation`]) used to reproduce the paper's reliability study.
//!
//! ## Quick example
//!
//! ```
//! use simdram_dram::{DramConfig, Subarray, BGroupRow, RowAddr};
//!
//! let cfg = DramConfig::default();
//! let mut sa = Subarray::new(&cfg);
//! // Fill three data rows with patterns.
//! sa.write_row(0, &simdram_dram::BitRow::splat_word(0b1010, cfg.columns_per_row));
//! sa.write_row(1, &simdram_dram::BitRow::splat_word(0b1100, cfg.columns_per_row));
//! sa.write_row(2, &simdram_dram::BitRow::splat_word(0b1111, cfg.columns_per_row));
//! // MAJ(r0, r1, r2) using the Ambit command sequence.
//! sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::T0)).unwrap();
//! sa.aap(RowAddr::Data(1), RowAddr::BGroup(BGroupRow::T1)).unwrap();
//! sa.aap(RowAddr::Data(2), RowAddr::BGroup(BGroupRow::T2)).unwrap();
//! sa.ap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2).unwrap();
//! sa.aap(RowAddr::BGroup(BGroupRow::T0), RowAddr::Data(3)).unwrap();
//! assert_eq!(sa.read_row(3).word(0) & 0xF, 0b1110);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
pub mod bankstate;
mod bitrow;
mod command;
mod config;
mod device;
pub mod envopt;
mod error;
mod fault;
mod rowclone;
mod rowops;
mod subarray;

pub mod energy;
pub mod stats;
pub mod timing;
pub mod variation;

pub use bank::Bank;
pub use bankstate::{BankStateModel, BankStateReplay, BankTiming, RowBufferOutcome};
pub use bitrow::BitRow;
pub use command::{
    rowtag, CommandCosts, CommandKind, CommandTrace, DramCommand, TraceAggregate, TraceSlot,
};
pub use config::{DramConfig, DramConfigBuilder};
pub use device::DramDevice;
pub use energy::EnergyModel;
pub use envopt::EnvOverrideError;
pub use error::{DramError, Result};
pub use fault::{FaultModel, FaultState};
pub use rowclone::{CopyMechanism, InterSubarrayCopy};
pub use rowops::{RowOp, RowOpBlock, RowRef, RowTemplate, SrcRef, WriteRef};
pub use subarray::{BGroupRow, RowAddr, Subarray};
pub use timing::DramTiming;
