//! The compute-capable DRAM subarray: data rows plus the Ambit B-group.
//!
//! Following Ambit (MICRO 2017) — the substrate SIMDRAM builds on — each compute subarray
//! reserves a small group of rows attached to a special row decoder (the *B-group*):
//!
//! * **T0–T3**: four designated rows that can participate in *triple-row activation* (TRA).
//!   Activating three of them simultaneously makes the bitlines settle to the bitwise
//!   majority of the three rows, which is then restored into all three rows and latched in
//!   the sense amplifiers.
//! * **DCC0/DCC1**: two *dual-contact cells* rows. Each has a second, negated wordline
//!   (`DCC0N`/`DCC1N`); activating the negated wordline drives the complement of the stored
//!   value onto the bitlines, providing bitwise NOT.
//! * **C0/C1**: control rows hard-wired to all-zeros and all-ones.
//!
//! Data movement between regular data rows and the B-group uses RowClone-FPM copies,
//! expressed as `AAP` (ACTIVATE–ACTIVATE–PRECHARGE) commands; TRA is an `AP`
//! (ACTIVATE–PRECHARGE) with a special triple-row address.
//!
//! The model deviates from real Ambit in one documented way (see `DESIGN.md`): any three
//! distinct B-group rows may be named in a TRA, instead of Ambit's fixed triple-address
//! table. μProgram command counts are unaffected.

use crate::bitrow::BitRow;
use crate::command::{rowtag, CommandCosts, CommandTrace, DramCommand, TraceSlot};
use crate::config::DramConfig;
use crate::error::{DramError, Result};
use crate::fault::FaultState;
use crate::rowops::{RowOp, RowOpBlock, RowRef, RowTemplate, SrcRef, WriteRef};

/// Rows of the B-group (compute rows) of a subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BGroupRow {
    /// Designated TRA row 0.
    T0,
    /// Designated TRA row 1.
    T1,
    /// Designated TRA row 2.
    T2,
    /// Designated TRA row 3.
    T3,
    /// Dual-contact cell row 0 (true wordline).
    Dcc0,
    /// Dual-contact cell row 0, negated wordline.
    Dcc0N,
    /// Dual-contact cell row 1 (true wordline).
    Dcc1,
    /// Dual-contact cell row 1, negated wordline.
    Dcc1N,
    /// Control row hard-wired to all zeros.
    C0,
    /// Control row hard-wired to all ones.
    C1,
}

impl BGroupRow {
    /// All B-group rows, useful for iteration in tests.
    pub const ALL: [BGroupRow; 10] = [
        BGroupRow::T0,
        BGroupRow::T1,
        BGroupRow::T2,
        BGroupRow::T3,
        BGroupRow::Dcc0,
        BGroupRow::Dcc0N,
        BGroupRow::Dcc1,
        BGroupRow::Dcc1N,
        BGroupRow::C0,
        BGroupRow::C1,
    ];

    /// Returns `true` for the constant control rows `C0`/`C1`.
    pub fn is_control(self) -> bool {
        matches!(self, BGroupRow::C0 | BGroupRow::C1)
    }

    /// Returns `true` for the negated wordlines of the dual-contact cells.
    pub fn is_negated_wordline(self) -> bool {
        matches!(self, BGroupRow::Dcc0N | BGroupRow::Dcc1N)
    }
}

/// Address of a row within a subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowAddr {
    /// A regular data row, indexed from 0.
    Data(usize),
    /// A compute row of the B-group.
    BGroup(BGroupRow),
}

/// A DRAM subarray with Ambit-style compute capability.
///
/// See this module's documentation for the row organization. All mutating operations
/// record the DRAM command(s) they correspond to in an internal [`CommandTrace`] so tests
/// and higher layers can verify both the *data* transformation and the *cost* of an
/// operation.
#[derive(Debug, Clone)]
pub struct Subarray {
    columns: usize,
    rows: Vec<BitRow>,
    t: [BitRow; 4],
    dcc: [BitRow; 2],
    /// Materialized contents of the hard-wired control rows `C0`/`C1`. They never change
    /// after construction; keeping them as real rows lets [`Subarray::row`] hand out
    /// borrows and the command path copy from them without allocating.
    c0: BitRow,
    c1: BitRow,
    sense: BitRow,
    row_open: bool,
    trace: CommandTrace,
    /// The six cost combinations this subarray's commands charge, pre-registered in the
    /// trace's cost table so the per-command hot path records without searching.
    costs: [DramCommand; 6],
    slots: [TraceSlot; 6],
    /// Seeded fault-injection stream, installed by [`crate::DramDevice::install_faults`];
    /// `None` (the default) leaves every TRA exact.
    faults: Option<FaultState>,
}

/// Indices into [`Subarray::costs`]/[`Subarray::slots`], one per command template.
#[derive(Debug, Clone, Copy)]
enum Cost {
    Write,
    Read,
    Aap,
    AapTra,
    Tra,
    Ap,
}

impl Subarray {
    /// Creates a subarray with the geometry and cost models of `config`. All rows start
    /// zeroed.
    pub fn new(config: &DramConfig) -> Self {
        let columns = config.columns_per_row;
        // Single-sourced from `CommandCosts` so compiled-program aggregates built from the
        // same config charge bit-identical costs; index order matches the `Cost` enum.
        let costs = CommandCosts::new(config).templates().clone();
        let mut trace = CommandTrace::new();
        let slots = costs.clone().map(|c| trace.register(c));
        Subarray {
            columns,
            rows: vec![BitRow::zeros(columns); config.rows_per_subarray],
            t: [
                BitRow::zeros(columns),
                BitRow::zeros(columns),
                BitRow::zeros(columns),
                BitRow::zeros(columns),
            ],
            dcc: [BitRow::zeros(columns), BitRow::zeros(columns)],
            c0: BitRow::zeros(columns),
            c1: BitRow::ones(columns),
            sense: BitRow::zeros(columns),
            row_open: false,
            trace,
            costs,
            slots,
            faults: None,
        }
    }

    /// Records one command on the pre-registered hot path, tagging the row its first
    /// activation opens (see [`rowtag`]). Tags never affect accounting totals.
    fn record_row(&mut self, cost: Cost, row: u32) {
        self.trace.record_at(self.slots[cost as usize], row);
    }

    /// Number of columns (SIMD lanes) in the subarray.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Number of regular data rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// The command trace accumulated so far.
    pub fn trace(&self) -> &CommandTrace {
        &self.trace
    }

    /// Clears the accumulated command trace, including its aggregate counters.
    pub fn reset_trace(&mut self) {
        self.trace.clear();
        // `clear` drops the trace's cost table; re-register this subarray's slots.
        self.slots = self.costs.clone().map(|c| self.trace.register(c));
    }

    /// Drops the trace's per-command history while keeping its aggregate counters
    /// (length, per-kind counts, latency/energy totals) intact.
    ///
    /// Callers that have already absorbed the per-command history elsewhere — e.g. a
    /// machine merging per-broadcast [`CommandTrace`]s via [`Subarray::trace_since`] —
    /// use this to keep long-running subarrays from accumulating unbounded history.
    pub fn drain_trace(&mut self) {
        self.trace.drain_history();
    }

    /// Reserves trace capacity for `additional` upcoming commands, so executing a
    /// μProgram of known length never reallocates mid-execution.
    pub fn reserve_trace(&mut self, additional: usize) {
        self.trace.reserve(additional);
    }

    /// A mark into the command trace; pass it to [`Subarray::trace_since`] later to obtain
    /// the commands issued in between as a self-contained [`CommandTrace`].
    pub fn trace_mark(&self) -> usize {
        self.trace.len()
    }

    /// Returns the commands issued since `mark` (from [`Subarray::trace_mark`]) as a new,
    /// self-contained trace with its own latency/energy totals.
    ///
    /// Execution kernels use this to *return* their accounting instead of accumulating it
    /// through shared state, which is what makes broadcast execution parallelizable: each
    /// chunk produces a local trace, and the caller merges them in deterministic chunk
    /// order.
    pub fn trace_since(&self, mark: usize) -> CommandTrace {
        self.trace.since(mark)
    }

    /// Host-side write of a full row (a conventional `WR` burst over the channel).
    ///
    /// Rows shorter or longer than the subarray width are truncated / zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range; use [`Subarray::try_write_row`] for a fallible
    /// variant.
    pub fn write_row(&mut self, row: usize, data: &BitRow) {
        self.try_write_row(row, data).expect("row index in range");
    }

    /// Fallible variant of [`Subarray::write_row`].
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] if `row` is not a valid data-row index.
    pub fn try_write_row(&mut self, row: usize, data: &BitRow) -> Result<()> {
        let rows = self.rows.len();
        let dst = self
            .rows
            .get_mut(row)
            .ok_or(DramError::RowOutOfRange { row, rows })?;
        dst.copy_from_resized(data);
        self.record_row(Cost::Write, rowtag::data(row));
        Ok(())
    }

    /// Host-side read of a full row (a conventional `RD` burst over the channel).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range; use [`Subarray::try_read_row`] for a fallible
    /// variant.
    pub fn read_row(&mut self, row: usize) -> BitRow {
        self.try_read_row(row).expect("row index in range")
    }

    /// Fallible variant of [`Subarray::read_row`].
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] if `row` is not a valid data-row index.
    pub fn try_read_row(&mut self, row: usize) -> Result<BitRow> {
        let rows = self.rows.len();
        let data = self
            .rows
            .get(row)
            .cloned()
            .ok_or(DramError::RowOutOfRange { row, rows })?;
        self.record_row(Cost::Read, rowtag::data(row));
        Ok(data)
    }

    /// Borrows a row's stored contents without issuing any DRAM command and without
    /// cloning the row.
    ///
    /// This is the zero-copy accessor read/verify paths should prefer over
    /// [`Subarray::peek`]. The negated dual-contact wordlines (`Dcc0N`/`Dcc1N`) have no
    /// stored row of their own — they drive the complement of the corresponding DCC row —
    /// so they cannot be borrowed; use [`Subarray::peek`] to snapshot them.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for an invalid data row and
    /// [`DramError::InvalidConfig`] for a negated wordline.
    pub fn row(&self, addr: RowAddr) -> Result<&BitRow> {
        match addr {
            RowAddr::Data(r) => self.rows.get(r).ok_or(DramError::RowOutOfRange {
                row: r,
                rows: self.rows.len(),
            }),
            RowAddr::BGroup(b) => match b {
                BGroupRow::T0 => Ok(&self.t[0]),
                BGroupRow::T1 => Ok(&self.t[1]),
                BGroupRow::T2 => Ok(&self.t[2]),
                BGroupRow::T3 => Ok(&self.t[3]),
                BGroupRow::Dcc0 => Ok(&self.dcc[0]),
                BGroupRow::Dcc1 => Ok(&self.dcc[1]),
                BGroupRow::C0 => Ok(&self.c0),
                BGroupRow::C1 => Ok(&self.c1),
                BGroupRow::Dcc0N | BGroupRow::Dcc1N => Err(DramError::InvalidConfig(
                    "negated wordlines drive a computed complement and have no stored row; \
                     use peek() to snapshot them"
                        .into(),
                )),
            },
        }
    }

    /// Returns a snapshot of a row's contents without issuing any DRAM command.
    ///
    /// This is a debugging/verification helper (the simulator equivalent of probing the
    /// array), not an architectural operation. Prefer [`Subarray::row`] when a borrow
    /// suffices.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] if the address is not valid.
    pub fn peek(&self, addr: RowAddr) -> Result<BitRow> {
        match addr {
            RowAddr::BGroup(BGroupRow::Dcc0N) => Ok(self.dcc[0].not()),
            RowAddr::BGroup(BGroupRow::Dcc1N) => Ok(self.dcc[1].not()),
            _ => self.row(addr).cloned(),
        }
    }

    /// Directly overwrites a row's contents without issuing any DRAM command.
    ///
    /// Like [`Subarray::peek`], this is a simulation convenience used to initialize state in
    /// tests and by the transposition unit model (which accounts for its cost separately).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for an invalid data row, and
    /// [`DramError::InvalidConfig`] when attempting to poke a constant control row.
    pub fn poke(&mut self, addr: RowAddr, data: &BitRow) -> Result<()> {
        match addr {
            RowAddr::Data(r) => {
                let rows = self.rows.len();
                let dst = self
                    .rows
                    .get_mut(r)
                    .ok_or(DramError::RowOutOfRange { row: r, rows })?;
                dst.copy_from_resized(data);
            }
            RowAddr::BGroup(b) => {
                let dst = match b {
                    BGroupRow::T0 => &mut self.t[0],
                    BGroupRow::T1 => &mut self.t[1],
                    BGroupRow::T2 => &mut self.t[2],
                    BGroupRow::T3 => &mut self.t[3],
                    BGroupRow::Dcc0 | BGroupRow::Dcc0N => &mut self.dcc[0],
                    BGroupRow::Dcc1 | BGroupRow::Dcc1N => &mut self.dcc[1],
                    BGroupRow::C0 | BGroupRow::C1 => {
                        return Err(DramError::InvalidConfig(
                            "control rows C0/C1 are hard-wired and cannot be written".into(),
                        ))
                    }
                };
                dst.copy_from_resized(data);
                // Driving a negated wordline stores the complement in the cell, so that a
                // subsequent activation of the true wordline reads back NOT(value).
                if b.is_negated_wordline() {
                    dst.invert();
                }
            }
        }
        Ok(())
    }

    /// `AAP src, dst`: copies the value driven by `src` into `dst` through the sense
    /// amplifiers (RowClone-FPM). This is the workhorse command of SIMDRAM μPrograms.
    ///
    /// The datapath is allocation-free and single-pass: in hardware the source settles on
    /// the bitlines and the second activation restores it into the destination cells, so
    /// the simulator performs one direct word-level row copy (a fill for the constant
    /// control rows, an in-place complement for copies between a dual-contact cell's two
    /// wordlines) rather than materializing the intermediate sense value.
    ///
    /// # Errors
    ///
    /// Returns an error if either address is invalid or if `dst` is a constant control row.
    pub fn aap(&mut self, src: RowAddr, dst: RowAddr) -> Result<()> {
        let s = self.resolve(src)?;
        let d = self.resolve_writable(dst)?;
        self.drive(s, d);
        self.row_open = false; // AAP ends with a precharge.
        self.record_row(Cost::Aap, tag_of_addr(src));
        Ok(())
    }

    /// `AP` with a triple-row address: simultaneously activates three distinct B-group rows,
    /// computing their bitwise majority. The majority value is restored into all three rows
    /// (except hard-wired control rows) and latched in the sense amplifiers.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::DuplicateTraRow`] if the three rows are not distinct.
    pub fn ap_tra(&mut self, a: BGroupRow, b: BGroupRow, c: BGroupRow) -> Result<()> {
        if a == b || b == c || a == c {
            return Err(DramError::DuplicateTraRow);
        }
        let fault_key = self.next_fault_key();
        if !self.try_tra_fused(a, b, c, None, fault_key) {
            self.tra_into_sense(a, b, c, fault_key);
            self.restore_tra_rows(a, b, c)?;
        }
        self.row_open = false;
        self.record_row(Cost::Tra, rowtag::tra(a as usize, b as usize, c as usize));
        Ok(())
    }

    /// `AAP` whose first activation is a triple-row activation: computes the majority of
    /// three B-group rows and copies the result into `dst` in a single command, as Ambit
    /// does when the result is needed in a different row.
    ///
    /// # Errors
    ///
    /// Returns an error if the rows are not distinct or `dst` is invalid.
    pub fn aap_tra(
        &mut self,
        a: BGroupRow,
        b: BGroupRow,
        c: BGroupRow,
        dst: RowAddr,
    ) -> Result<()> {
        if a == b || b == c || a == c {
            return Err(DramError::DuplicateTraRow);
        }
        let fault_key = self.next_fault_key();
        if !self.try_tra_fused(a, b, c, Some(dst), fault_key) {
            self.tra_into_sense(a, b, c, fault_key);
            self.restore_tra_rows(a, b, c)?;
            self.restore(dst)?;
        }
        self.row_open = false;
        self.record_row(
            Cost::AapTra,
            rowtag::tra(a as usize, b as usize, c as usize),
        );
        Ok(())
    }

    /// `AP row`: activates and precharges a single row without copying it anywhere. Used to
    /// refresh the sense amplifiers or as a timing placeholder; the data is unchanged.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is invalid.
    pub fn ap(&mut self, row: RowAddr) -> Result<()> {
        self.latch(row)?;
        self.row_open = false;
        self.record_row(Cost::Ap, tag_of_addr(row));
        Ok(())
    }

    /// Convenience: Ambit's in-DRAM NOT. Copies `src` into DCC0 and then the negated
    /// wordline into `dst` (2 AAPs).
    ///
    /// # Errors
    ///
    /// Returns an error if either address is invalid.
    pub fn not_row(&mut self, src: RowAddr, dst: RowAddr) -> Result<()> {
        self.aap(src, RowAddr::BGroup(BGroupRow::Dcc0))?;
        self.aap(RowAddr::BGroup(BGroupRow::Dcc0N), dst)?;
        Ok(())
    }

    /// Convenience: Ambit's in-DRAM MAJ of three data rows into a destination row
    /// (3 AAPs to stage the operands + 1 AAP with a TRA source).
    ///
    /// # Errors
    ///
    /// Returns an error if any address is invalid.
    pub fn maj_rows(&mut self, a: RowAddr, b: RowAddr, c: RowAddr, dst: RowAddr) -> Result<()> {
        self.aap(a, RowAddr::BGroup(BGroupRow::T0))?;
        self.aap(b, RowAddr::BGroup(BGroupRow::T1))?;
        self.aap(c, RowAddr::BGroup(BGroupRow::T2))?;
        self.aap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2, dst)?;
        Ok(())
    }

    /// Convenience: Ambit's in-DRAM AND of two rows (`MAJ(a, b, 0)`).
    ///
    /// # Errors
    ///
    /// Returns an error if any address is invalid.
    pub fn and_rows(&mut self, a: RowAddr, b: RowAddr, dst: RowAddr) -> Result<()> {
        self.maj_rows(a, b, RowAddr::BGroup(BGroupRow::C0), dst)
    }

    /// Convenience: Ambit's in-DRAM OR of two rows (`MAJ(a, b, 1)`).
    ///
    /// # Errors
    ///
    /// Returns an error if any address is invalid.
    pub fn or_rows(&mut self, a: RowAddr, b: RowAddr, dst: RowAddr) -> Result<()> {
        self.maj_rows(a, b, RowAddr::BGroup(BGroupRow::C1), dst)
    }

    /// Resolves an address to the physical row storage that backs it (validating data-row
    /// indices) plus the complement flag of negated wordlines.
    fn resolve(&self, addr: RowAddr) -> Result<Driven> {
        let phys = match addr {
            RowAddr::Data(r) => {
                if r >= self.rows.len() {
                    return Err(DramError::RowOutOfRange {
                        row: r,
                        rows: self.rows.len(),
                    });
                }
                Phys::Data(r)
            }
            RowAddr::BGroup(b) => match b {
                BGroupRow::T0 => Phys::T(0),
                BGroupRow::T1 => Phys::T(1),
                BGroupRow::T2 => Phys::T(2),
                BGroupRow::T3 => Phys::T(3),
                BGroupRow::Dcc0 | BGroupRow::Dcc0N => Phys::Dcc(0),
                BGroupRow::Dcc1 | BGroupRow::Dcc1N => Phys::Dcc(1),
                BGroupRow::C0 => Phys::Const(false),
                BGroupRow::C1 => Phys::Const(true),
            },
        };
        let negated = matches!(addr, RowAddr::BGroup(BGroupRow::Dcc0N | BGroupRow::Dcc1N));
        Ok(Driven { phys, negated })
    }

    /// Like [`Subarray::resolve`], rejecting the hard-wired control rows.
    fn resolve_writable(&self, addr: RowAddr) -> Result<Driven> {
        let driven = self.resolve(addr)?;
        if matches!(driven.phys, Phys::Const(_)) {
            return Err(DramError::InvalidConfig(
                "control rows C0/C1 are hard-wired and cannot be written".into(),
            ));
        }
        Ok(driven)
    }

    /// Performs the single-pass row movement of an AAP: the value `src` drives onto the
    /// bitlines lands in `dst`'s cells. Both descriptors are pre-validated, so the copy
    /// itself cannot fail.
    fn drive(&mut self, src: Driven, dst: Driven) {
        // Driving through a negated wordline complements on the way out of the source
        // cell and again on the way into the destination cell.
        let invert = src.negated != dst.negated;
        if let Phys::Const(v) = src.phys {
            self.phys_mut(dst.phys).fill(v != dst.negated);
            return;
        }
        if src.phys == dst.phys {
            // Same physical cells (e.g. `AAP Dcc0 → Dcc0N`): at most an in-place
            // complement.
            if invert {
                self.phys_mut(dst.phys).invert();
            }
            return;
        }
        let (s, d) = self.phys_pair_mut(src.phys, dst.phys);
        if invert {
            s.not_into(d).expect("subarray rows share one width");
        } else {
            d.copy_from(s).expect("subarray rows share one width");
        }
    }

    fn phys_mut(&mut self, phys: Phys) -> &mut BitRow {
        match phys {
            Phys::Data(r) => &mut self.rows[r],
            Phys::T(i) => &mut self.t[i],
            Phys::Dcc(i) => &mut self.dcc[i],
            Phys::Const(_) => unreachable!("control rows are never writable"),
        }
    }

    /// Disjoint borrows of two distinct physical rows (read source, written destination).
    fn phys_pair_mut(&mut self, src: Phys, dst: Phys) -> (&BitRow, &mut BitRow) {
        let Subarray { rows, t, dcc, .. } = self;
        match (src, dst) {
            (Phys::Data(i), Phys::Data(j)) => {
                let (a, b) = split_pair(rows, i, j);
                (a, b)
            }
            (Phys::T(i), Phys::T(j)) => {
                let (a, b) = split_pair(t, i, j);
                (a, b)
            }
            (Phys::Dcc(i), Phys::Dcc(j)) => {
                let (a, b) = split_pair(dcc, i, j);
                (a, b)
            }
            (Phys::Data(i), Phys::T(j)) => (&rows[i], &mut t[j]),
            (Phys::Data(i), Phys::Dcc(j)) => (&rows[i], &mut dcc[j]),
            (Phys::T(i), Phys::Data(j)) => (&t[i], &mut rows[j]),
            (Phys::T(i), Phys::Dcc(j)) => (&t[i], &mut dcc[j]),
            (Phys::Dcc(i), Phys::Data(j)) => (&dcc[i], &mut rows[j]),
            (Phys::Dcc(i), Phys::T(j)) => (&dcc[i], &mut t[j]),
            (Phys::Const(_), _) | (_, Phys::Const(_)) => {
                unreachable!("constant rows are handled before pairing")
            }
        }
    }

    /// Fused fast path for the TRA the μProgram generator emits: three distinct plain
    /// `T` rows (no negated wordlines, no constants) and an optional `Data` destination.
    /// One word-level pass computes the majority and restores it into the sense row, the
    /// three activated rows and the destination simultaneously — exactly the lock-step
    /// charge restoration the hardware performs. Returns `false` (leaving all state
    /// untouched) when the operands need the general path.
    fn try_tra_fused(
        &mut self,
        a: BGroupRow,
        b: BGroupRow,
        c: BGroupRow,
        dst: Option<RowAddr>,
        fault_key: Option<u64>,
    ) -> bool {
        let (Some(i), Some(j), Some(k)) = (t_index(a), t_index(b), t_index(c)) else {
            return false;
        };
        let dst_row = match dst {
            None => None,
            Some(RowAddr::Data(r)) if r < self.rows.len() => Some(r),
            // Out-of-range or non-data destinations keep the general path's
            // error/ordering behaviour.
            Some(_) => return false,
        };
        self.fused_tra([i, j, k], dst_row, fault_key);
        true
    }

    /// The fused-TRA word-level kernel shared by [`Subarray::try_tra_fused`] and the
    /// compiled row-op path: majority of three distinct plain `T` rows restored into the
    /// operands, the sense row and an optional pre-validated data row.
    fn fused_tra(&mut self, mut idx: [usize; 3], dst_row: Option<usize>, fault_key: Option<u64>) {
        idx.sort_unstable(); // majority and restore are operand-order independent
        let Subarray {
            rows,
            t,
            sense,
            faults,
            columns,
            ..
        } = self;
        let (lo, rest) = t.split_at_mut(idx[1]);
        let (mid, hi) = rest.split_at_mut(idx[2] - idx[1]);
        let (ra, rb, rc) = (&mut lo[idx[0]], &mut mid[0], &mut hi[0]);
        // One tight pass computes the majority into the sense row; the charge
        // restorations are then plain word-level row copies (separate passes beat one
        // multi-stream loop: each is a straight memcpy from the cache-hot sense row).
        BitRow::majority_into(ra, rb, rc, sense).expect("subarray rows share one width");
        if let (Some(state), Some(key)) = (faults.as_mut(), fault_key) {
            // Inject between the charge-sharing and the restoration, so a flipped bit
            // propagates into the activated rows and the destination exactly like a
            // marginal sense amplifier latching the wrong way.
            let (wa, wb, wc) = (ra.words(), rb.words(), rc.words());
            state.corrupt_tra(key, sense.words_mut(), *columns, |col| {
                let (w, bit) = (col / 64, col % 64);
                let (x, y, z) = (wa[w], wb[w], wc[w]);
                (((x ^ y) | (y ^ z)) >> bit) & 1 == 1
            });
            sense.normalize();
        }
        ra.copy_from(sense).expect("subarray rows share one width");
        rb.copy_from(sense).expect("subarray rows share one width");
        rc.copy_from(sense).expect("subarray rows share one width");
        if let Some(r) = dst_row {
            rows[r]
                .copy_from(sense)
                .expect("subarray rows share one width");
        }
    }

    /// Latches the value driven by `addr` into the sense-amplifier row (the first
    /// ACTIVATE of a command) with a word-level copy and no allocation.
    fn latch(&mut self, addr: RowAddr) -> Result<()> {
        match addr {
            RowAddr::Data(r) => {
                let src = self.rows.get(r).ok_or(DramError::RowOutOfRange {
                    row: r,
                    rows: self.rows.len(),
                })?;
                self.sense.copy_from(src)?;
            }
            RowAddr::BGroup(b) => match b {
                BGroupRow::T0 => self.sense.copy_from(&self.t[0])?,
                BGroupRow::T1 => self.sense.copy_from(&self.t[1])?,
                BGroupRow::T2 => self.sense.copy_from(&self.t[2])?,
                BGroupRow::T3 => self.sense.copy_from(&self.t[3])?,
                BGroupRow::Dcc0 => self.sense.copy_from(&self.dcc[0])?,
                BGroupRow::Dcc1 => self.sense.copy_from(&self.dcc[1])?,
                BGroupRow::Dcc0N => self.dcc[0].not_into(&mut self.sense)?,
                BGroupRow::Dcc1N => self.dcc[1].not_into(&mut self.sense)?,
                BGroupRow::C0 => self.sense.fill(false),
                BGroupRow::C1 => self.sense.fill(true),
            },
        }
        Ok(())
    }

    /// Restores the sense-amplifier row into `addr` (the second ACTIVATE of an AAP, or
    /// the charge restoration of a TRA) with a word-level copy and no allocation.
    fn restore(&mut self, addr: RowAddr) -> Result<()> {
        match addr {
            RowAddr::Data(r) => {
                let rows = self.rows.len();
                let dst = self
                    .rows
                    .get_mut(r)
                    .ok_or(DramError::RowOutOfRange { row: r, rows })?;
                dst.copy_from(&self.sense)?;
            }
            RowAddr::BGroup(b) => match b {
                BGroupRow::T0 => self.t[0].copy_from(&self.sense)?,
                BGroupRow::T1 => self.t[1].copy_from(&self.sense)?,
                BGroupRow::T2 => self.t[2].copy_from(&self.sense)?,
                BGroupRow::T3 => self.t[3].copy_from(&self.sense)?,
                BGroupRow::Dcc0 => self.dcc[0].copy_from(&self.sense)?,
                BGroupRow::Dcc1 => self.dcc[1].copy_from(&self.sense)?,
                // Driving the negated wordline stores the complement in the cell, so
                // that a subsequent activation of the true wordline reads back NOT(value).
                BGroupRow::Dcc0N => self.sense.not_into(&mut self.dcc[0])?,
                BGroupRow::Dcc1N => self.sense.not_into(&mut self.dcc[1])?,
                BGroupRow::C0 | BGroupRow::C1 => {
                    return Err(DramError::InvalidConfig(
                        "control rows C0/C1 are hard-wired and cannot be written".into(),
                    ))
                }
            },
        }
        Ok(())
    }

    /// Computes the bitwise majority of three B-group rows directly into the
    /// sense-amplifier row, resolving negated wordlines and constant control rows at the
    /// word level so no operand is ever materialized.
    fn tra_into_sense(&mut self, a: BGroupRow, b: BGroupRow, c: BGroupRow, fault_key: Option<u64>) {
        let Subarray {
            sense,
            t,
            dcc,
            c0,
            c1,
            faults,
            columns,
            ..
        } = self;
        // Each operand becomes (stored words, complement mask): negated wordlines drive
        // the complement, which a word-wise XOR with all-ones reproduces; the hard-wired
        // control rows are materialized, so one tight three-slice loop covers every case.
        let resolve = |row: BGroupRow| -> (&[u64], u64) {
            match row {
                BGroupRow::T0 => (t[0].words(), 0),
                BGroupRow::T1 => (t[1].words(), 0),
                BGroupRow::T2 => (t[2].words(), 0),
                BGroupRow::T3 => (t[3].words(), 0),
                BGroupRow::Dcc0 => (dcc[0].words(), 0),
                BGroupRow::Dcc1 => (dcc[1].words(), 0),
                BGroupRow::Dcc0N => (dcc[0].words(), u64::MAX),
                BGroupRow::Dcc1N => (dcc[1].words(), u64::MAX),
                BGroupRow::C0 => (c0.words(), 0),
                BGroupRow::C1 => (c1.words(), 0),
            }
        };
        let (wa, xa) = resolve(a);
        let (wb, xb) = resolve(b);
        let (wc, xc) = resolve(c);
        let out = sense.words_mut();
        // Every row in a subarray has the same word count; slicing all four to one
        // length lets the compiler drop bounds checks and vectorize the majority loop.
        let n = out.len();
        let (wa, wb, wc) = (&wa[..n], &wb[..n], &wc[..n]);
        for (i, w) in out.iter_mut().enumerate() {
            let (x, y, z) = (wa[i] ^ xa, wb[i] ^ xb, wc[i] ^ xc);
            *w = (x & y) | (y & z) | (x & z);
        }
        // Complemented operands set stray bits past the row length; re-mask the tail.
        sense.normalize();
        if let (Some(state), Some(key)) = (faults.as_mut(), fault_key) {
            // Marginality is judged on the *driven* values (complements applied), the
            // same 2-vs-1 worst case the variation model scores.
            state.corrupt_tra(key, sense.words_mut(), *columns, |col| {
                let (w, bit) = (col / 64, col % 64);
                let (x, y, z) = (wa[w] ^ xa, wb[w] ^ xb, wc[w] ^ xc);
                (((x ^ y) | (y ^ z)) >> bit) & 1 == 1
            });
            sense.normalize();
        }
    }

    /// Restores the TRA result latched in the sense amplifiers into the activated rows
    /// (hard-wired control rows keep their constant value).
    fn restore_tra_rows(&mut self, a: BGroupRow, b: BGroupRow, c: BGroupRow) -> Result<()> {
        for row in [a, b, c] {
            if !row.is_control() {
                self.restore(RowAddr::BGroup(row))?;
            }
        }
        Ok(())
    }

    /// Applies a compiled [`RowOpBlock`] — the fast path of compiled μProgram execution.
    ///
    /// `bases` supplies the base data row of each region the block addresses; the block's
    /// per-region extents are bounds-checked once up front, after which the specialized
    /// word-level loop runs with no per-command address resolution or trace recording.
    /// The block's pre-aggregated accounting is charged to the cumulative trace in one
    /// shot at the end; `with_history` additionally appends the per-command history so
    /// sampled subarrays keep full reconstructable traces.
    ///
    /// Applying a block compiled from a μProgram leaves the subarray's rows in exactly
    /// the state the interpreted command sequence produces, and self-contained traces
    /// built from the block's aggregate match interpreted local traces to the last bit
    /// (see [`crate::TraceAggregate`]).
    ///
    /// After warmup (trace cost table registered, history capacity reserved), applying a
    /// block without history performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] if `bases` has fewer entries than the block
    /// has regions, and [`DramError::RowOutOfRange`] if a region's rows fall outside the
    /// subarray. On error nothing is executed and no cost is charged.
    pub fn apply_block(
        &mut self,
        block: &RowOpBlock,
        bases: &[usize],
        with_history: bool,
    ) -> Result<()> {
        if bases.len() < block.regions() {
            return Err(DramError::InvalidConfig(format!(
                "{} region bases supplied for a {}-region block",
                bases.len(),
                block.regions()
            )));
        }
        let rows = self.rows.len();
        for (region, &extent) in block.region_extents().iter().enumerate() {
            let extent = extent as usize;
            if extent > 0 && bases[region] + extent > rows {
                return Err(DramError::RowOutOfRange {
                    row: bases[region] + extent - 1,
                    rows,
                });
            }
        }
        // Fault keys: the stream position every majority op would have had in the
        // interpreted path, recovered from the block's source-μProgram TRA ordinals.
        let fault_base = self.faults.as_ref().map(|s| s.counter());
        let maj_ordinals = block.maj_ordinals();
        let mut maj_index = 0usize;
        let next_fault_key = |index: &mut usize| -> Option<u64> {
            let key = fault_base.map(|base| base + u64::from(maj_ordinals[*index]));
            *index += 1;
            key
        };
        for op in block.ops() {
            match *op {
                RowOp::Copy { src, dst } => {
                    let (s, d) = (row_ref_phys(src, bases), row_ref_phys(dst, bases));
                    // Degenerate same-cell case (only reachable through overlapping
                    // region bases): restoring a row onto itself moves no data, exactly
                    // like the interpreted drive.
                    if s != d {
                        let (s, d) = self.phys_pair_mut(s, d);
                        d.copy_from(s).expect("subarray rows share one width");
                    }
                }
                RowOp::CopyInv { src, dst } => {
                    let (s, d) = (row_ref_phys(src, bases), row_ref_phys(dst, bases));
                    if s == d {
                        self.phys_mut(d).invert();
                    } else {
                        let (s, d) = self.phys_pair_mut(s, d);
                        s.not_into(d).expect("subarray rows share one width");
                    }
                }
                RowOp::Fill { dst, value } => self.phys_mut(row_ref_phys(dst, bases)).fill(value),
                RowOp::Invert { dst } => self.phys_mut(row_ref_phys(dst, bases)).invert(),
                RowOp::Nop => {}
                RowOp::MajFused { t, dst } => {
                    let dst_row = dst.map(|d| match row_ref_phys(d, bases) {
                        Phys::Data(r) => r,
                        _ => unreachable!("block validation restricts fused TRA dst to data rows"),
                    });
                    let key = next_fault_key(&mut maj_index);
                    self.fused_tra([t[0] as usize, t[1] as usize, t[2] as usize], dst_row, key);
                }
                RowOp::Maj { a, b, c, dst } => {
                    let key = next_fault_key(&mut maj_index);
                    self.tra_into_sense(a, b, c, key);
                    self.restore_tra_rows(a, b, c)
                        .expect("non-control B-group rows are always restorable");
                    if let Some(w) = dst {
                        match row_ref_phys(w.row, bases) {
                            Phys::Data(r) => {
                                if w.negated {
                                    self.sense.not_into(&mut self.rows[r])
                                } else {
                                    self.rows[r].copy_from(&self.sense)
                                }
                            }
                            Phys::T(i) => {
                                if w.negated {
                                    self.sense.not_into(&mut self.t[i])
                                } else {
                                    self.t[i].copy_from(&self.sense)
                                }
                            }
                            Phys::Dcc(i) => {
                                if w.negated {
                                    self.sense.not_into(&mut self.dcc[i])
                                } else {
                                    self.dcc[i].copy_from(&self.sense)
                                }
                            }
                            Phys::Const(_) => {
                                unreachable!("RowRef has no constant-row variant")
                            }
                        }
                        .expect("subarray rows share one width");
                    }
                }
                RowOp::MajDirect { srcs, dst } => {
                    // Each operand resolves to its stored words plus a complement
                    // mask (negated wordlines XOR with all-ones), exactly like the
                    // interpreted TRA resolve — one tight pass computes the
                    // (optionally complemented) majority into the sense row.
                    let key = next_fault_key(&mut maj_index);
                    let Subarray {
                        rows,
                        t,
                        dcc,
                        c0,
                        c1,
                        sense,
                        faults,
                        columns,
                        ..
                    } = &mut *self;
                    let resolve = |s: SrcRef| -> (&[u64], u64) {
                        match s {
                            SrcRef::Row { row, negated } => {
                                let words = match row_ref_phys(row, bases) {
                                    Phys::Data(r) => rows[r].words(),
                                    Phys::T(i) => t[i].words(),
                                    Phys::Dcc(i) => dcc[i].words(),
                                    Phys::Const(_) => {
                                        unreachable!("RowRef has no constant-row variant")
                                    }
                                };
                                (words, if negated { u64::MAX } else { 0 })
                            }
                            SrcRef::Const(false) => (c0.words(), 0),
                            SrcRef::Const(true) => (c1.words(), 0),
                        }
                    };
                    let (wa, xa) = resolve(srcs[0]);
                    let (wb, xb) = resolve(srcs[1]);
                    let (wc, xc) = resolve(srcs[2]);
                    // A negated destination wordline complements the stored value —
                    // folded into the same pass.
                    let xd = match dst {
                        Some(WriteRef { negated: true, .. }) => u64::MAX,
                        _ => 0,
                    };
                    let out = sense.words_mut();
                    let n = out.len();
                    let (wa, wb, wc) = (&wa[..n], &wb[..n], &wc[..n]);
                    for (i, w) in out.iter_mut().enumerate() {
                        let (x, y, z) = (wa[i] ^ xa, wb[i] ^ xb, wc[i] ^ xc);
                        *w = ((x & y) | (y & z) | (x & z)) ^ xd;
                    }
                    sense.normalize();
                    if let (Some(state), Some(key)) = (faults.as_mut(), key) {
                        // Flipping a bit of `maj ^ xd` equals flipping it before the
                        // destination complement, so injection commutes with `xd` and
                        // stays bit-compatible with the interpreted path. Marginality
                        // is judged on the driven (pre-`xd`) operand values.
                        state.corrupt_tra(key, sense.words_mut(), *columns, |col| {
                            let (w, bit) = (col / 64, col % 64);
                            let (x, y, z) = (wa[w] ^ xa, wb[w] ^ xb, wc[w] ^ xc);
                            (((x ^ y) | (y ^ z)) >> bit) & 1 == 1
                        });
                        sense.normalize();
                    }
                    if let Some(w) = dst {
                        // The sense row is not architecturally observable and no source
                        // ever names it, so "restoring" it into the destination cell is
                        // a constant-time row swap rather than a word copy.
                        let target = match row_ref_phys(w.row, bases) {
                            Phys::Data(r) => &mut rows[r],
                            Phys::T(i) => &mut t[i],
                            Phys::Dcc(i) => &mut dcc[i],
                            Phys::Const(_) => {
                                unreachable!("RowRef has no constant-row variant")
                            }
                        };
                        core::mem::swap(sense, target);
                    }
                }
            }
        }
        // Advance the fault stream past *every* source TRA — including ones the
        // compiler elided — so the stream position stays mode-independent.
        if let Some(state) = self.faults.as_mut() {
            state.advance(u64::from(block.tra_total()));
        }
        self.row_open = false;
        if with_history && !block.row_tags().is_empty() {
            // Resolve the block's row-address templates against this application's
            // bases so the retained history carries the same tags the interpreted
            // path records command by command; the on-the-fly iterator keeps the
            // warmed apply path allocation-free.
            self.trace.apply_aggregate_rows_with(
                block.aggregate(),
                block.row_tags().iter().map(|tag| match *tag {
                    RowTemplate::Fixed(t) => t,
                    RowTemplate::Data { region, offset } => {
                        rowtag::data(bases[region as usize] + offset as usize)
                    }
                }),
            );
        } else {
            self.trace.apply_aggregate(block.aggregate(), with_history);
        }
        Ok(())
    }

    /// Consumes the next interpreted-path fault key, or `None` when no fault stream is
    /// installed. Called once per executed TRA so the stream position always matches
    /// the μProgram TRA ordinal.
    fn next_fault_key(&mut self) -> Option<u64> {
        self.faults.as_mut().map(FaultState::take_key)
    }

    /// Installs (or clears, with `None`) this subarray's fault-injection stream.
    pub fn install_fault_state(&mut self, state: Option<FaultState>) {
        self.faults = state;
    }

    /// The installed fault stream, if any.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// Bits flipped by fault injection in this subarray so far (0 with faults off).
    pub fn faults_injected(&self) -> u64 {
        self.faults.as_ref().map_or(0, FaultState::injected)
    }

    /// Snapshots every data row (the architecturally observable state; B-group
    /// temporaries are dead between commands). Guarded re-execution in `simdram-core`
    /// uses this with [`Subarray::restore_data_rows`] / [`Subarray::data_rows_equal`]
    /// to detect and recover injected faults; none of the three record commands.
    pub fn clone_data_rows(&self) -> Vec<BitRow> {
        self.rows.clone()
    }

    /// Restores a snapshot taken by [`Subarray::clone_data_rows`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a different geometry.
    pub fn restore_data_rows(&mut self, snapshot: &[BitRow]) {
        assert_eq!(
            snapshot.len(),
            self.rows.len(),
            "data-row snapshot geometry mismatch"
        );
        for (row, saved) in self.rows.iter_mut().zip(snapshot) {
            row.copy_from(saved).expect("subarray rows share one width");
        }
    }

    /// Compares every data row against a snapshot taken by
    /// [`Subarray::clone_data_rows`].
    pub fn data_rows_equal(&self, snapshot: &[BitRow]) -> bool {
        self.rows.as_slice() == snapshot
    }
}

/// The [`rowtag`] of a row address' first activation: data rows tag their index,
/// B-group rows their [`BGroupRow`] ordinal. Negated wordlines are distinct addresses
/// (distinct wordlines of one cell), so they tag their own ordinal.
fn tag_of_addr(addr: RowAddr) -> u32 {
    match addr {
        RowAddr::Data(r) => rowtag::data(r),
        RowAddr::BGroup(b) => rowtag::bgroup(b as usize),
    }
}

/// Resolves a pre-compiled row reference against the caller's region base table.
fn row_ref_phys(row: RowRef, bases: &[usize]) -> Phys {
    match row {
        RowRef::Data { region, offset } => Phys::Data(bases[region as usize] + offset as usize),
        RowRef::T(i) => Phys::T(i as usize),
        RowRef::Dcc(i) => Phys::Dcc(i as usize),
    }
}

/// The physical storage backing a row address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phys {
    Data(usize),
    T(usize),
    Dcc(usize),
    /// A hard-wired constant control row (`false` = C0, `true` = C1).
    Const(bool),
}

/// A resolved row address: its storage plus whether the wordline drives the complement.
#[derive(Debug, Clone, Copy)]
struct Driven {
    phys: Phys,
    negated: bool,
}

/// The `T`-row index of a designated TRA row, or `None` for every other B-group row.
fn t_index(row: BGroupRow) -> Option<usize> {
    match row {
        BGroupRow::T0 => Some(0),
        BGroupRow::T1 => Some(1),
        BGroupRow::T2 => Some(2),
        BGroupRow::T3 => Some(3),
        _ => None,
    }
}

/// Disjoint `(&rows[i], &mut rows[j])` borrows of two distinct rows of one slice.
fn split_pair(rows: &mut [BitRow], i: usize, j: usize) -> (&BitRow, &mut BitRow) {
    debug_assert_ne!(i, j);
    if i < j {
        let (lo, hi) = rows.split_at_mut(j);
        (&lo[i], &mut hi[0])
    } else {
        let (lo, hi) = rows.split_at_mut(i);
        (&hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandKind;

    fn small_subarray() -> Subarray {
        Subarray::new(&DramConfig::tiny())
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut sa = small_subarray();
        let pattern = BitRow::splat_word(0xAAAA_5555_0F0F_F0F0, 256);
        sa.write_row(7, &pattern);
        assert_eq!(sa.read_row(7), pattern);
        assert_eq!(sa.trace().count(CommandKind::Write), 1);
        assert_eq!(sa.trace().count(CommandKind::Read), 1);
    }

    #[test]
    fn trace_since_returns_only_new_commands() {
        let mut sa = small_subarray();
        sa.write_row(0, &BitRow::ones(256));
        let mark = sa.trace_mark();
        sa.aap(RowAddr::Data(0), RowAddr::Data(1)).unwrap();
        sa.aap(RowAddr::Data(1), RowAddr::Data(2)).unwrap();
        let local = sa.trace_since(mark);
        assert_eq!(local.len(), 2);
        assert_eq!(local.count(CommandKind::Write), 0);
        // The cumulative trace is untouched.
        assert_eq!(sa.trace().len(), 3);
    }

    #[test]
    fn out_of_range_rows_error() {
        let mut sa = small_subarray();
        let rows = sa.rows();
        assert!(sa.try_read_row(rows).is_err());
        assert!(sa.try_write_row(rows, &BitRow::zeros(256)).is_err());
        assert!(sa.aap(RowAddr::Data(rows + 1), RowAddr::Data(0)).is_err());
    }

    #[test]
    fn aap_copies_between_data_rows() {
        let mut sa = small_subarray();
        let pattern = BitRow::from_fn(256, |i| i % 7 == 0);
        sa.write_row(3, &pattern);
        sa.aap(RowAddr::Data(3), RowAddr::Data(9)).unwrap();
        assert_eq!(sa.peek(RowAddr::Data(9)).unwrap(), pattern);
        assert_eq!(sa.trace().count(CommandKind::ActivateActivatePrecharge), 1);
    }

    #[test]
    fn tra_computes_majority_and_restores_rows() {
        let mut sa = small_subarray();
        sa.poke(
            RowAddr::BGroup(BGroupRow::T0),
            &BitRow::splat_word(0b1111_0000, 256),
        )
        .unwrap();
        sa.poke(
            RowAddr::BGroup(BGroupRow::T1),
            &BitRow::splat_word(0b1100_1100, 256),
        )
        .unwrap();
        sa.poke(
            RowAddr::BGroup(BGroupRow::T2),
            &BitRow::splat_word(0b1010_1010, 256),
        )
        .unwrap();
        sa.ap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2)
            .unwrap();
        let expected = 0b1110_1000u64;
        for row in [BGroupRow::T0, BGroupRow::T1, BGroupRow::T2] {
            assert_eq!(
                sa.peek(RowAddr::BGroup(row)).unwrap().word(0) & 0xFF,
                expected
            );
        }
        assert_eq!(sa.trace().count(CommandKind::TripleRowActivate), 1);
    }

    #[test]
    fn tra_requires_distinct_rows() {
        let mut sa = small_subarray();
        assert_eq!(
            sa.ap_tra(BGroupRow::T0, BGroupRow::T0, BGroupRow::T1),
            Err(DramError::DuplicateTraRow)
        );
    }

    #[test]
    fn dcc_negated_wordline_reads_complement() {
        let mut sa = small_subarray();
        let pattern = BitRow::from_fn(256, |i| i % 2 == 0);
        sa.write_row(0, &pattern);
        sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::Dcc0))
            .unwrap();
        sa.aap(RowAddr::BGroup(BGroupRow::Dcc0N), RowAddr::Data(1))
            .unwrap();
        assert_eq!(sa.peek(RowAddr::Data(1)).unwrap(), pattern.not());
    }

    #[test]
    fn not_row_convenience_matches_manual_sequence() {
        let mut sa = small_subarray();
        let pattern = BitRow::splat_word(0x0123_4567_89AB_CDEF, 256);
        sa.write_row(5, &pattern);
        sa.not_row(RowAddr::Data(5), RowAddr::Data(6)).unwrap();
        assert_eq!(sa.peek(RowAddr::Data(6)).unwrap(), pattern.not());
        // 2 AAPs for the NOT plus 1 host write.
        assert_eq!(sa.trace().count(CommandKind::ActivateActivatePrecharge), 2);
    }

    #[test]
    fn control_rows_cannot_be_written() {
        let mut sa = small_subarray();
        assert!(sa
            .aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::C0))
            .is_err());
        assert!(sa
            .aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::C1))
            .is_err());
    }

    #[test]
    fn and_or_via_control_rows() {
        let mut sa = small_subarray();
        let a = BitRow::splat_word(0b1100, 256);
        let b = BitRow::splat_word(0b1010, 256);
        sa.write_row(0, &a);
        sa.write_row(1, &b);
        sa.and_rows(RowAddr::Data(0), RowAddr::Data(1), RowAddr::Data(2))
            .unwrap();
        sa.or_rows(RowAddr::Data(0), RowAddr::Data(1), RowAddr::Data(3))
            .unwrap();
        assert_eq!(sa.peek(RowAddr::Data(2)).unwrap().word(0) & 0xF, 0b1000);
        assert_eq!(sa.peek(RowAddr::Data(3)).unwrap().word(0) & 0xF, 0b1110);
    }

    #[test]
    fn maj_rows_counts_four_aaps() {
        let mut sa = small_subarray();
        sa.write_row(0, &BitRow::ones(256));
        sa.write_row(1, &BitRow::zeros(256));
        sa.write_row(2, &BitRow::ones(256));
        sa.reset_trace();
        sa.maj_rows(
            RowAddr::Data(0),
            RowAddr::Data(1),
            RowAddr::Data(2),
            RowAddr::Data(3),
        )
        .unwrap();
        assert_eq!(sa.trace().count(CommandKind::ActivateActivatePrecharge), 4);
        assert_eq!(sa.peek(RowAddr::Data(3)).unwrap(), BitRow::ones(256));
    }

    #[test]
    fn ap_latches_sense_amplifiers_without_data_change() {
        let mut sa = small_subarray();
        let pattern = BitRow::splat_word(0xF0F0, 256);
        sa.write_row(4, &pattern);
        sa.ap(RowAddr::Data(4)).unwrap();
        assert_eq!(sa.peek(RowAddr::Data(4)).unwrap(), pattern);
        assert_eq!(sa.trace().count(CommandKind::ActivatePrecharge), 1);
    }

    #[test]
    fn poke_rejects_control_rows() {
        let mut sa = small_subarray();
        assert!(sa
            .poke(RowAddr::BGroup(BGroupRow::C0), &BitRow::zeros(256))
            .is_err());
    }

    #[test]
    fn apply_block_matches_the_interpreted_command_sequence() {
        use crate::command::CommandCosts;
        use crate::rowops::{RowOp, RowOpBlock, RowRef, RowTemplate};
        use crate::TraceAggregate;

        let config = DramConfig::tiny();
        let costs = CommandCosts::new(&config);
        // MAJ(r0, r1, r2) → r3 as a compiled block: three staging copies plus a fused
        // AAP-TRA, addressed relative to one data region based at row 0.
        let data = |offset: u32| RowRef::Data { region: 0, offset };
        let ops = vec![
            RowOp::Copy {
                src: data(0),
                dst: RowRef::T(0),
            },
            RowOp::Copy {
                src: data(1),
                dst: RowRef::T(1),
            },
            RowOp::Copy {
                src: data(2),
                dst: RowRef::T(2),
            },
            RowOp::MajFused {
                t: [0, 1, 2],
                dst: Some(data(3)),
            },
        ];
        let aggregate = TraceAggregate::from_commands(vec![
            costs.aap().clone(),
            costs.aap().clone(),
            costs.aap().clone(),
            costs.aap_tra().clone(),
        ]);
        // Row tags mirror the interpreted first activations: the three staged source
        // rows, then the T0/T1/T2 triple of the fused AAP-TRA.
        let tag = |offset: u32| RowTemplate::Data { region: 0, offset };
        let block = RowOpBlock::new(ops, 1, aggregate)
            .unwrap()
            .with_row_tags(vec![
                tag(0),
                tag(1),
                tag(2),
                RowTemplate::Fixed(rowtag::tra(
                    BGroupRow::T0 as usize,
                    BGroupRow::T1 as usize,
                    BGroupRow::T2 as usize,
                )),
            ])
            .unwrap();

        let mut interpreted = Subarray::new(&config);
        let mut compiled = Subarray::new(&config);
        for sa in [&mut interpreted, &mut compiled] {
            sa.write_row(0, &BitRow::splat_word(0b1100, 256));
            sa.write_row(1, &BitRow::splat_word(0b1010, 256));
            sa.write_row(2, &BitRow::splat_word(0b0110, 256));
        }
        interpreted
            .maj_rows(
                RowAddr::Data(0),
                RowAddr::Data(1),
                RowAddr::Data(2),
                RowAddr::Data(3),
            )
            .unwrap();
        compiled.apply_block(&block, &[0], true).unwrap();

        for row in 0..4 {
            assert_eq!(
                interpreted.peek(RowAddr::Data(row)).unwrap(),
                compiled.peek(RowAddr::Data(row)).unwrap()
            );
        }
        for b in BGroupRow::ALL {
            assert_eq!(
                interpreted.peek(RowAddr::BGroup(b)).unwrap(),
                compiled.peek(RowAddr::BGroup(b)).unwrap()
            );
        }
        // Same length, per-kind counts and bit-identical totals; with history applied,
        // the reconstructed command sequences match too.
        assert_eq!(compiled.trace().len(), interpreted.trace().len());
        assert_eq!(
            compiled.trace().kind_counts().collect::<Vec<_>>(),
            interpreted.trace().kind_counts().collect::<Vec<_>>()
        );
        let since_writes = |sa: &Subarray| sa.trace().since(3);
        assert_eq!(since_writes(&compiled), since_writes(&interpreted));
        // Without history, aggregates still accrue but nothing is reconstructable.
        let mut drained = Subarray::new(&config);
        drained.apply_block(&block, &[0], false).unwrap();
        assert_eq!(drained.trace().len(), 4);
        assert_eq!(drained.trace().history_len(), 0);

        // Region bounds are checked up front: a base pushing the extent past the last
        // row fails without executing anything.
        let rows = compiled.rows();
        assert!(matches!(
            compiled.apply_block(&block, &[rows - 2], false),
            Err(DramError::RowOutOfRange { .. })
        ));
        assert!(compiled.apply_block(&block, &[], false).is_err());
    }

    #[test]
    fn shorter_host_rows_are_zero_extended() {
        let mut sa = small_subarray();
        sa.write_row(0, &BitRow::ones(8));
        let row = sa.read_row(0);
        assert_eq!(row.len(), 256);
        assert_eq!(row.count_ones(), 8);
    }
}
