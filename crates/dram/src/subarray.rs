//! The compute-capable DRAM subarray: data rows plus the Ambit B-group.
//!
//! Following Ambit (MICRO 2017) — the substrate SIMDRAM builds on — each compute subarray
//! reserves a small group of rows attached to a special row decoder (the *B-group*):
//!
//! * **T0–T3**: four designated rows that can participate in *triple-row activation* (TRA).
//!   Activating three of them simultaneously makes the bitlines settle to the bitwise
//!   majority of the three rows, which is then restored into all three rows and latched in
//!   the sense amplifiers.
//! * **DCC0/DCC1**: two *dual-contact cells* rows. Each has a second, negated wordline
//!   (`DCC0N`/`DCC1N`); activating the negated wordline drives the complement of the stored
//!   value onto the bitlines, providing bitwise NOT.
//! * **C0/C1**: control rows hard-wired to all-zeros and all-ones.
//!
//! Data movement between regular data rows and the B-group uses RowClone-FPM copies,
//! expressed as `AAP` (ACTIVATE–ACTIVATE–PRECHARGE) commands; TRA is an `AP`
//! (ACTIVATE–PRECHARGE) with a special triple-row address.
//!
//! The model deviates from real Ambit in one documented way (see `DESIGN.md`): any three
//! distinct B-group rows may be named in a TRA, instead of Ambit's fixed triple-address
//! table. μProgram command counts are unaffected.

use crate::bitrow::BitRow;
use crate::command::{CommandKind, CommandTrace, DramCommand};
use crate::config::DramConfig;
use crate::error::{DramError, Result};

/// Rows of the B-group (compute rows) of a subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BGroupRow {
    /// Designated TRA row 0.
    T0,
    /// Designated TRA row 1.
    T1,
    /// Designated TRA row 2.
    T2,
    /// Designated TRA row 3.
    T3,
    /// Dual-contact cell row 0 (true wordline).
    Dcc0,
    /// Dual-contact cell row 0, negated wordline.
    Dcc0N,
    /// Dual-contact cell row 1 (true wordline).
    Dcc1,
    /// Dual-contact cell row 1, negated wordline.
    Dcc1N,
    /// Control row hard-wired to all zeros.
    C0,
    /// Control row hard-wired to all ones.
    C1,
}

impl BGroupRow {
    /// All B-group rows, useful for iteration in tests.
    pub const ALL: [BGroupRow; 10] = [
        BGroupRow::T0,
        BGroupRow::T1,
        BGroupRow::T2,
        BGroupRow::T3,
        BGroupRow::Dcc0,
        BGroupRow::Dcc0N,
        BGroupRow::Dcc1,
        BGroupRow::Dcc1N,
        BGroupRow::C0,
        BGroupRow::C1,
    ];

    /// Returns `true` for the constant control rows `C0`/`C1`.
    pub fn is_control(self) -> bool {
        matches!(self, BGroupRow::C0 | BGroupRow::C1)
    }

    /// Returns `true` for the negated wordlines of the dual-contact cells.
    pub fn is_negated_wordline(self) -> bool {
        matches!(self, BGroupRow::Dcc0N | BGroupRow::Dcc1N)
    }
}

/// Address of a row within a subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowAddr {
    /// A regular data row, indexed from 0.
    Data(usize),
    /// A compute row of the B-group.
    BGroup(BGroupRow),
}

/// A DRAM subarray with Ambit-style compute capability.
///
/// See the [module documentation](self) for the row organization. All mutating operations
/// record the DRAM command(s) they correspond to in an internal [`CommandTrace`] so tests
/// and higher layers can verify both the *data* transformation and the *cost* of an
/// operation.
#[derive(Debug, Clone)]
pub struct Subarray {
    columns: usize,
    rows: Vec<BitRow>,
    t: [BitRow; 4],
    dcc: [BitRow; 2],
    sense: BitRow,
    row_open: bool,
    trace: CommandTrace,
    timing_ap_ns: f64,
    timing_aap_ns: f64,
    timing_read_ns: f64,
    timing_write_ns: f64,
    energy_ap_nj: f64,
    energy_tra_nj: f64,
    energy_aap_nj: f64,
    energy_aap_tra_nj: f64,
    energy_row_io_nj: f64,
}

impl Subarray {
    /// Creates a subarray with the geometry and cost models of `config`. All rows start
    /// zeroed.
    pub fn new(config: &DramConfig) -> Self {
        let columns = config.columns_per_row;
        let row_bits = columns;
        Subarray {
            columns,
            rows: vec![BitRow::zeros(columns); config.rows_per_subarray],
            t: [
                BitRow::zeros(columns),
                BitRow::zeros(columns),
                BitRow::zeros(columns),
                BitRow::zeros(columns),
            ],
            dcc: [BitRow::zeros(columns), BitRow::zeros(columns)],
            sense: BitRow::zeros(columns),
            row_open: false,
            trace: CommandTrace::new(),
            timing_ap_ns: config.timing.ap_ns(),
            timing_aap_ns: config.timing.aap_ns(),
            timing_read_ns: config.timing.row_read_ns(columns / 8),
            timing_write_ns: config.timing.row_write_ns(columns / 8),
            energy_ap_nj: config.energy.ap_nj(false),
            energy_tra_nj: config.energy.ap_nj(true),
            energy_aap_nj: config.energy.aap_nj(false),
            energy_aap_tra_nj: config.energy.aap_nj(true),
            energy_row_io_nj: config.energy.channel_transfer_nj(row_bits),
        }
    }

    /// Number of columns (SIMD lanes) in the subarray.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Number of regular data rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// The command trace accumulated so far.
    pub fn trace(&self) -> &CommandTrace {
        &self.trace
    }

    /// Clears the accumulated command trace.
    pub fn reset_trace(&mut self) {
        self.trace.clear();
    }

    /// A mark into the command trace; pass it to [`Subarray::trace_since`] later to obtain
    /// the commands issued in between as a self-contained [`CommandTrace`].
    pub fn trace_mark(&self) -> usize {
        self.trace.len()
    }

    /// Returns the commands issued since `mark` (from [`Subarray::trace_mark`]) as a new,
    /// self-contained trace with its own latency/energy totals.
    ///
    /// Execution kernels use this to *return* their accounting instead of accumulating it
    /// through shared state, which is what makes broadcast execution parallelizable: each
    /// chunk produces a local trace, and the caller merges them in deterministic chunk
    /// order.
    pub fn trace_since(&self, mark: usize) -> CommandTrace {
        self.trace.since(mark)
    }

    /// Host-side write of a full row (a conventional `WR` burst over the channel).
    ///
    /// Rows shorter or longer than the subarray width are truncated / zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range; use [`Subarray::try_write_row`] for a fallible
    /// variant.
    pub fn write_row(&mut self, row: usize, data: &BitRow) {
        self.try_write_row(row, data).expect("row index in range");
    }

    /// Fallible variant of [`Subarray::write_row`].
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] if `row` is not a valid data-row index.
    pub fn try_write_row(&mut self, row: usize, data: &BitRow) -> Result<()> {
        let columns = self.columns;
        let rows = self.rows.len();
        let dst = self
            .rows
            .get_mut(row)
            .ok_or(DramError::RowOutOfRange { row, rows })?;
        *dst = resize_row(data, columns);
        self.trace.push(DramCommand {
            kind: CommandKind::Write,
            latency_ns: self.timing_write_ns,
            energy_nj: self.energy_row_io_nj,
        });
        Ok(())
    }

    /// Host-side read of a full row (a conventional `RD` burst over the channel).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range; use [`Subarray::try_read_row`] for a fallible
    /// variant.
    pub fn read_row(&mut self, row: usize) -> BitRow {
        self.try_read_row(row).expect("row index in range")
    }

    /// Fallible variant of [`Subarray::read_row`].
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] if `row` is not a valid data-row index.
    pub fn try_read_row(&mut self, row: usize) -> Result<BitRow> {
        let rows = self.rows.len();
        let data = self
            .rows
            .get(row)
            .cloned()
            .ok_or(DramError::RowOutOfRange { row, rows })?;
        self.trace.push(DramCommand {
            kind: CommandKind::Read,
            latency_ns: self.timing_read_ns,
            energy_nj: self.energy_row_io_nj,
        });
        Ok(data)
    }

    /// Returns a snapshot of a row's contents without issuing any DRAM command.
    ///
    /// This is a debugging/verification helper (the simulator equivalent of probing the
    /// array), not an architectural operation.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] if the address is not valid.
    pub fn peek(&self, addr: RowAddr) -> Result<BitRow> {
        self.value_of(addr)
    }

    /// Directly overwrites a row's contents without issuing any DRAM command.
    ///
    /// Like [`Subarray::peek`], this is a simulation convenience used to initialize state in
    /// tests and by the transposition unit model (which accounts for its cost separately).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for an invalid data row, and
    /// [`DramError::InvalidConfig`] when attempting to poke a constant control row.
    pub fn poke(&mut self, addr: RowAddr, data: &BitRow) -> Result<()> {
        let value = resize_row(data, self.columns);
        match addr {
            RowAddr::Data(r) => {
                let rows = self.rows.len();
                let dst = self
                    .rows
                    .get_mut(r)
                    .ok_or(DramError::RowOutOfRange { row: r, rows })?;
                *dst = value;
            }
            RowAddr::BGroup(b) => self.store_bgroup(b, value)?,
        }
        Ok(())
    }

    /// `AAP src, dst`: copies the value driven by `src` into `dst` through the sense
    /// amplifiers (RowClone-FPM). This is the workhorse command of SIMDRAM μPrograms.
    ///
    /// # Errors
    ///
    /// Returns an error if either address is invalid or if `dst` is a constant control row.
    pub fn aap(&mut self, src: RowAddr, dst: RowAddr) -> Result<()> {
        let value = self.value_of(src)?;
        self.store(dst, value.clone())?;
        self.sense = value;
        self.row_open = false; // AAP ends with a precharge.
        self.trace.push(DramCommand {
            kind: CommandKind::ActivateActivatePrecharge,
            latency_ns: self.timing_aap_ns,
            energy_nj: self.energy_aap_nj,
        });
        Ok(())
    }

    /// `AP` with a triple-row address: simultaneously activates three distinct B-group rows,
    /// computing their bitwise majority. The majority value is restored into all three rows
    /// (except hard-wired control rows) and latched in the sense amplifiers.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::DuplicateTraRow`] if the three rows are not distinct.
    pub fn ap_tra(&mut self, a: BGroupRow, b: BGroupRow, c: BGroupRow) -> Result<()> {
        if a == b || b == c || a == c {
            return Err(DramError::DuplicateTraRow);
        }
        let va = self.bgroup_value(a);
        let vb = self.bgroup_value(b);
        let vc = self.bgroup_value(c);
        let maj = BitRow::majority(&va, &vb, &vc)?;
        for row in [a, b, c] {
            if !row.is_control() {
                self.store_bgroup(row, maj.clone())?;
            }
        }
        self.sense = maj;
        self.row_open = false;
        self.trace.push(DramCommand {
            kind: CommandKind::TripleRowActivate,
            latency_ns: self.timing_ap_ns,
            energy_nj: self.energy_tra_nj,
        });
        Ok(())
    }

    /// `AAP` whose first activation is a triple-row activation: computes the majority of
    /// three B-group rows and copies the result into `dst` in a single command, as Ambit
    /// does when the result is needed in a different row.
    ///
    /// # Errors
    ///
    /// Returns an error if the rows are not distinct or `dst` is invalid.
    pub fn aap_tra(
        &mut self,
        a: BGroupRow,
        b: BGroupRow,
        c: BGroupRow,
        dst: RowAddr,
    ) -> Result<()> {
        if a == b || b == c || a == c {
            return Err(DramError::DuplicateTraRow);
        }
        let va = self.bgroup_value(a);
        let vb = self.bgroup_value(b);
        let vc = self.bgroup_value(c);
        let maj = BitRow::majority(&va, &vb, &vc)?;
        for row in [a, b, c] {
            if !row.is_control() {
                self.store_bgroup(row, maj.clone())?;
            }
        }
        self.store(dst, maj.clone())?;
        self.sense = maj;
        self.row_open = false;
        self.trace.push(DramCommand {
            kind: CommandKind::ActivateActivatePrecharge,
            latency_ns: self.timing_aap_ns,
            energy_nj: self.energy_aap_tra_nj,
        });
        Ok(())
    }

    /// `AP row`: activates and precharges a single row without copying it anywhere. Used to
    /// refresh the sense amplifiers or as a timing placeholder; the data is unchanged.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is invalid.
    pub fn ap(&mut self, row: RowAddr) -> Result<()> {
        let value = self.value_of(row)?;
        self.sense = value;
        self.row_open = false;
        self.trace.push(DramCommand {
            kind: CommandKind::ActivatePrecharge,
            latency_ns: self.timing_ap_ns,
            energy_nj: self.energy_ap_nj,
        });
        Ok(())
    }

    /// Convenience: Ambit's in-DRAM NOT. Copies `src` into DCC0 and then the negated
    /// wordline into `dst` (2 AAPs).
    ///
    /// # Errors
    ///
    /// Returns an error if either address is invalid.
    pub fn not_row(&mut self, src: RowAddr, dst: RowAddr) -> Result<()> {
        self.aap(src, RowAddr::BGroup(BGroupRow::Dcc0))?;
        self.aap(RowAddr::BGroup(BGroupRow::Dcc0N), dst)?;
        Ok(())
    }

    /// Convenience: Ambit's in-DRAM MAJ of three data rows into a destination row
    /// (3 AAPs to stage the operands + 1 AAP with a TRA source).
    ///
    /// # Errors
    ///
    /// Returns an error if any address is invalid.
    pub fn maj_rows(&mut self, a: RowAddr, b: RowAddr, c: RowAddr, dst: RowAddr) -> Result<()> {
        self.aap(a, RowAddr::BGroup(BGroupRow::T0))?;
        self.aap(b, RowAddr::BGroup(BGroupRow::T1))?;
        self.aap(c, RowAddr::BGroup(BGroupRow::T2))?;
        self.aap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2, dst)?;
        Ok(())
    }

    /// Convenience: Ambit's in-DRAM AND of two rows (`MAJ(a, b, 0)`).
    ///
    /// # Errors
    ///
    /// Returns an error if any address is invalid.
    pub fn and_rows(&mut self, a: RowAddr, b: RowAddr, dst: RowAddr) -> Result<()> {
        self.maj_rows(a, b, RowAddr::BGroup(BGroupRow::C0), dst)
    }

    /// Convenience: Ambit's in-DRAM OR of two rows (`MAJ(a, b, 1)`).
    ///
    /// # Errors
    ///
    /// Returns an error if any address is invalid.
    pub fn or_rows(&mut self, a: RowAddr, b: RowAddr, dst: RowAddr) -> Result<()> {
        self.maj_rows(a, b, RowAddr::BGroup(BGroupRow::C1), dst)
    }

    fn value_of(&self, addr: RowAddr) -> Result<BitRow> {
        match addr {
            RowAddr::Data(r) => self.rows.get(r).cloned().ok_or(DramError::RowOutOfRange {
                row: r,
                rows: self.rows.len(),
            }),
            RowAddr::BGroup(b) => Ok(self.bgroup_value(b)),
        }
    }

    fn bgroup_value(&self, row: BGroupRow) -> BitRow {
        match row {
            BGroupRow::T0 => self.t[0].clone(),
            BGroupRow::T1 => self.t[1].clone(),
            BGroupRow::T2 => self.t[2].clone(),
            BGroupRow::T3 => self.t[3].clone(),
            BGroupRow::Dcc0 => self.dcc[0].clone(),
            BGroupRow::Dcc0N => self.dcc[0].not(),
            BGroupRow::Dcc1 => self.dcc[1].clone(),
            BGroupRow::Dcc1N => self.dcc[1].not(),
            BGroupRow::C0 => BitRow::zeros(self.columns),
            BGroupRow::C1 => BitRow::ones(self.columns),
        }
    }

    fn store(&mut self, addr: RowAddr, value: BitRow) -> Result<()> {
        match addr {
            RowAddr::Data(r) => {
                let rows = self.rows.len();
                let dst = self
                    .rows
                    .get_mut(r)
                    .ok_or(DramError::RowOutOfRange { row: r, rows })?;
                *dst = value;
                Ok(())
            }
            RowAddr::BGroup(b) => self.store_bgroup(b, value),
        }
    }

    fn store_bgroup(&mut self, row: BGroupRow, value: BitRow) -> Result<()> {
        match row {
            BGroupRow::T0 => self.t[0] = value,
            BGroupRow::T1 => self.t[1] = value,
            BGroupRow::T2 => self.t[2] = value,
            BGroupRow::T3 => self.t[3] = value,
            BGroupRow::Dcc0 => self.dcc[0] = value,
            // Driving the negated wordline stores the complement in the cell, so that a
            // subsequent activation of the true wordline reads back NOT(value).
            BGroupRow::Dcc0N => self.dcc[0] = value.not(),
            BGroupRow::Dcc1 => self.dcc[1] = value,
            BGroupRow::Dcc1N => self.dcc[1] = value.not(),
            BGroupRow::C0 | BGroupRow::C1 => {
                return Err(DramError::InvalidConfig(
                    "control rows C0/C1 are hard-wired and cannot be written".into(),
                ))
            }
        }
        Ok(())
    }
}

fn resize_row(data: &BitRow, columns: usize) -> BitRow {
    if data.len() == columns {
        data.clone()
    } else {
        BitRow::from_fn(columns, |i| i < data.len() && data.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_subarray() -> Subarray {
        Subarray::new(&DramConfig::tiny())
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut sa = small_subarray();
        let pattern = BitRow::splat_word(0xAAAA_5555_0F0F_F0F0, 256);
        sa.write_row(7, &pattern);
        assert_eq!(sa.read_row(7), pattern);
        assert_eq!(sa.trace().count(CommandKind::Write), 1);
        assert_eq!(sa.trace().count(CommandKind::Read), 1);
    }

    #[test]
    fn trace_since_returns_only_new_commands() {
        let mut sa = small_subarray();
        sa.write_row(0, &BitRow::ones(256));
        let mark = sa.trace_mark();
        sa.aap(RowAddr::Data(0), RowAddr::Data(1)).unwrap();
        sa.aap(RowAddr::Data(1), RowAddr::Data(2)).unwrap();
        let local = sa.trace_since(mark);
        assert_eq!(local.len(), 2);
        assert_eq!(local.count(CommandKind::Write), 0);
        // The cumulative trace is untouched.
        assert_eq!(sa.trace().len(), 3);
    }

    #[test]
    fn out_of_range_rows_error() {
        let mut sa = small_subarray();
        let rows = sa.rows();
        assert!(sa.try_read_row(rows).is_err());
        assert!(sa.try_write_row(rows, &BitRow::zeros(256)).is_err());
        assert!(sa.aap(RowAddr::Data(rows + 1), RowAddr::Data(0)).is_err());
    }

    #[test]
    fn aap_copies_between_data_rows() {
        let mut sa = small_subarray();
        let pattern = BitRow::from_fn(256, |i| i % 7 == 0);
        sa.write_row(3, &pattern);
        sa.aap(RowAddr::Data(3), RowAddr::Data(9)).unwrap();
        assert_eq!(sa.peek(RowAddr::Data(9)).unwrap(), pattern);
        assert_eq!(sa.trace().count(CommandKind::ActivateActivatePrecharge), 1);
    }

    #[test]
    fn tra_computes_majority_and_restores_rows() {
        let mut sa = small_subarray();
        sa.poke(
            RowAddr::BGroup(BGroupRow::T0),
            &BitRow::splat_word(0b1111_0000, 256),
        )
        .unwrap();
        sa.poke(
            RowAddr::BGroup(BGroupRow::T1),
            &BitRow::splat_word(0b1100_1100, 256),
        )
        .unwrap();
        sa.poke(
            RowAddr::BGroup(BGroupRow::T2),
            &BitRow::splat_word(0b1010_1010, 256),
        )
        .unwrap();
        sa.ap_tra(BGroupRow::T0, BGroupRow::T1, BGroupRow::T2)
            .unwrap();
        let expected = 0b1110_1000u64;
        for row in [BGroupRow::T0, BGroupRow::T1, BGroupRow::T2] {
            assert_eq!(
                sa.peek(RowAddr::BGroup(row)).unwrap().word(0) & 0xFF,
                expected
            );
        }
        assert_eq!(sa.trace().count(CommandKind::TripleRowActivate), 1);
    }

    #[test]
    fn tra_requires_distinct_rows() {
        let mut sa = small_subarray();
        assert_eq!(
            sa.ap_tra(BGroupRow::T0, BGroupRow::T0, BGroupRow::T1),
            Err(DramError::DuplicateTraRow)
        );
    }

    #[test]
    fn dcc_negated_wordline_reads_complement() {
        let mut sa = small_subarray();
        let pattern = BitRow::from_fn(256, |i| i % 2 == 0);
        sa.write_row(0, &pattern);
        sa.aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::Dcc0))
            .unwrap();
        sa.aap(RowAddr::BGroup(BGroupRow::Dcc0N), RowAddr::Data(1))
            .unwrap();
        assert_eq!(sa.peek(RowAddr::Data(1)).unwrap(), pattern.not());
    }

    #[test]
    fn not_row_convenience_matches_manual_sequence() {
        let mut sa = small_subarray();
        let pattern = BitRow::splat_word(0x0123_4567_89AB_CDEF, 256);
        sa.write_row(5, &pattern);
        sa.not_row(RowAddr::Data(5), RowAddr::Data(6)).unwrap();
        assert_eq!(sa.peek(RowAddr::Data(6)).unwrap(), pattern.not());
        // 2 AAPs for the NOT plus 1 host write.
        assert_eq!(sa.trace().count(CommandKind::ActivateActivatePrecharge), 2);
    }

    #[test]
    fn control_rows_cannot_be_written() {
        let mut sa = small_subarray();
        assert!(sa
            .aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::C0))
            .is_err());
        assert!(sa
            .aap(RowAddr::Data(0), RowAddr::BGroup(BGroupRow::C1))
            .is_err());
    }

    #[test]
    fn and_or_via_control_rows() {
        let mut sa = small_subarray();
        let a = BitRow::splat_word(0b1100, 256);
        let b = BitRow::splat_word(0b1010, 256);
        sa.write_row(0, &a);
        sa.write_row(1, &b);
        sa.and_rows(RowAddr::Data(0), RowAddr::Data(1), RowAddr::Data(2))
            .unwrap();
        sa.or_rows(RowAddr::Data(0), RowAddr::Data(1), RowAddr::Data(3))
            .unwrap();
        assert_eq!(sa.peek(RowAddr::Data(2)).unwrap().word(0) & 0xF, 0b1000);
        assert_eq!(sa.peek(RowAddr::Data(3)).unwrap().word(0) & 0xF, 0b1110);
    }

    #[test]
    fn maj_rows_counts_four_aaps() {
        let mut sa = small_subarray();
        sa.write_row(0, &BitRow::ones(256));
        sa.write_row(1, &BitRow::zeros(256));
        sa.write_row(2, &BitRow::ones(256));
        sa.reset_trace();
        sa.maj_rows(
            RowAddr::Data(0),
            RowAddr::Data(1),
            RowAddr::Data(2),
            RowAddr::Data(3),
        )
        .unwrap();
        assert_eq!(sa.trace().count(CommandKind::ActivateActivatePrecharge), 4);
        assert_eq!(sa.peek(RowAddr::Data(3)).unwrap(), BitRow::ones(256));
    }

    #[test]
    fn ap_latches_sense_amplifiers_without_data_change() {
        let mut sa = small_subarray();
        let pattern = BitRow::splat_word(0xF0F0, 256);
        sa.write_row(4, &pattern);
        sa.ap(RowAddr::Data(4)).unwrap();
        assert_eq!(sa.peek(RowAddr::Data(4)).unwrap(), pattern);
        assert_eq!(sa.trace().count(CommandKind::ActivatePrecharge), 1);
    }

    #[test]
    fn poke_rejects_control_rows() {
        let mut sa = small_subarray();
        assert!(sa
            .poke(RowAddr::BGroup(BGroupRow::C0), &BitRow::zeros(256))
            .is_err());
    }

    #[test]
    fn shorter_host_rows_are_zero_extended() {
        let mut sa = small_subarray();
        sa.write_row(0, &BitRow::ones(8));
        let row = sa.read_row(0);
        assert_eq!(row.len(), 256);
        assert_eq!(row.count_ones(), 8);
    }
}
