//! Analytic discrete-GPU baseline.
//!
//! The paper's GPU baseline is a high-end discrete accelerator (Titan V class) with
//! high-bandwidth memory. Like the CPU, the element-wise bulk operations of the evaluation
//! are memory-bandwidth bound on the GPU; its advantage over the CPU comes from an order of
//! magnitude more memory bandwidth. Energy is board power over execution time plus HBM
//! access energy.

use simdram_logic::Operation;

use crate::platform::PlatformPerf;

/// Parameters of the analytic GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Number of streaming multiprocessors.
    pub sms: usize,
    /// Sustained clock frequency in GHz.
    pub frequency_ghz: f64,
    /// 32-bit lanes per SM.
    pub lanes_per_sm: usize,
    /// Sustained memory bandwidth in GB/s.
    pub memory_bandwidth_gbs: f64,
    /// Board power under full load, in watts.
    pub board_power_w: f64,
    /// HBM energy per bit moved, in nanojoules.
    pub memory_energy_nj_per_bit: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            sms: 80,
            frequency_ghz: 1.455,
            lanes_per_sm: 64,
            memory_bandwidth_gbs: 652.8,
            board_power_w: 250.0,
            memory_energy_nj_per_bit: 0.0025,
        }
    }
}

impl GpuModel {
    /// Creates the default Titan-V-class model.
    pub fn new() -> Self {
        Self::default()
    }

    fn op_cost(op: Operation) -> f64 {
        match op {
            Operation::Div => 6.0,
            Operation::Mul => 1.2,
            Operation::Max | Operation::Min | Operation::IfElse => 1.2,
            _ => 1.0,
        }
    }

    fn bytes_per_element(op: Operation, width: usize) -> f64 {
        let operand_bytes = (width as f64 / 8.0).max(1.0);
        let sources = if op.uses_second_operand() { 2.0 } else { 1.0 };
        let dest = (op.output_width(width) as f64 / 8.0).max(0.125);
        sources * operand_bytes + dest
    }

    /// Peak compute throughput in giga-elements per second.
    pub fn compute_throughput_gops(&self, op: Operation, width: usize) -> f64 {
        // Sub-32-bit elements do not speed up scalar integer lanes; wider ones halve rate.
        let width_factor = if width > 32 { 0.5 } else { 1.0 };
        self.sms as f64 * self.lanes_per_sm as f64 * self.frequency_ghz * width_factor
            / Self::op_cost(op)
    }

    /// Memory-bandwidth-bound throughput in giga-elements per second.
    pub fn memory_throughput_gops(&self, op: Operation, width: usize) -> f64 {
        self.memory_bandwidth_gbs / Self::bytes_per_element(op, width)
    }

    /// Sustained throughput (minimum of the compute and memory bounds).
    pub fn throughput_gops(&self, op: Operation, width: usize) -> f64 {
        self.compute_throughput_gops(op, width)
            .min(self.memory_throughput_gops(op, width))
    }

    /// Energy per element in nanojoules.
    pub fn energy_per_element_nj(&self, op: Operation, width: usize) -> f64 {
        let throughput = self.throughput_gops(op, width);
        let board = self.board_power_w / throughput;
        let movement = Self::bytes_per_element(op, width) * 8.0 * self.memory_energy_nj_per_bit;
        board + movement
    }

    /// Full performance summary for one operation/width point.
    pub fn performance(&self, op: Operation, width: usize) -> PlatformPerf {
        let throughput = self.throughput_gops(op, width);
        let energy = self.energy_per_element_nj(op, width);
        PlatformPerf {
            throughput_gops: throughput,
            energy_per_element_nj: energy,
            gops_per_watt: 1.0 / energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuModel;

    #[test]
    fn gpu_outperforms_cpu_on_streaming_operations() {
        let gpu = GpuModel::default();
        let cpu = CpuModel::default();
        for width in [8, 16, 32, 64] {
            assert!(
                gpu.throughput_gops(Operation::Add, width)
                    > cpu.throughput_gops(Operation::Add, width)
            );
        }
    }

    #[test]
    fn gpu_is_memory_bound_for_simple_operations() {
        let gpu = GpuModel::default();
        assert!(
            gpu.memory_throughput_gops(Operation::Add, 32)
                < gpu.compute_throughput_gops(Operation::Add, 32)
        );
    }

    #[test]
    fn gpu_is_more_energy_efficient_than_cpu() {
        let gpu = GpuModel::default();
        let cpu = CpuModel::default();
        assert!(
            gpu.energy_per_element_nj(Operation::Add, 32)
                < cpu.energy_per_element_nj(Operation::Add, 32)
        );
    }
}
