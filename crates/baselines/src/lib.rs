//! # simdram-baselines — the comparison points of the SIMDRAM evaluation
//!
//! The paper compares SIMDRAM against three platforms:
//!
//! * **Ambit** ([`ambit_machine`]) — the prior processing-using-DRAM design, modelled as the
//!   same substrate driven by AND/OR/NOT μPrograms;
//! * **CPU** ([`CpuModel`]) — a multi-core AVX-class processor, analytic
//!   (memory-bandwidth-bound) model;
//! * **GPU** ([`GpuModel`]) — a high-end discrete GPU with HBM, analytic model.
//!
//! [`platform_performance`] evaluates any of them (plus SIMDRAM itself at 1/4/16 banks) for
//! one operation and width, and is what the figure generators in `simdram-bench` call.
//!
//! ## Example
//!
//! ```
//! use simdram_baselines::{platform_performance, Platform};
//! use simdram_logic::Operation;
//!
//! let cpu = platform_performance(Platform::Cpu, Operation::Add, 32);
//! let simdram = platform_performance(Platform::Simdram { banks: 16 }, Operation::Add, 32);
//! // The paper's headline: 16-bank SIMDRAM beats the CPU on bulk 32-bit addition.
//! assert!(simdram.throughput_gops > cpu.throughput_gops);
//! assert!(simdram.gops_per_watt > cpu.gops_per_watt);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ambit;
mod cpu;
mod gpu;
mod platform;

pub use ambit::{ambit_machine, paper_ambit};
pub use cpu::CpuModel;
pub use gpu::GpuModel;
pub use platform::{platform_performance, Platform, PlatformPerf};
