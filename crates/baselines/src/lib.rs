//! # simdram-baselines — the comparison points of the SIMDRAM evaluation
//!
//! The paper compares SIMDRAM against three platforms:
//!
//! * **Ambit** ([`ambit_machine`]) — the prior processing-using-DRAM design, modelled as the
//!   same substrate driven by AND/OR/NOT μPrograms;
//! * **CPU** ([`CpuModel`]) — a multi-core AVX-class processor, analytic
//!   (memory-bandwidth-bound) model;
//! * **GPU** ([`GpuModel`]) — a high-end discrete GPU with HBM, analytic model.
//!
//! [`platform_performance`] evaluates any of them (plus SIMDRAM itself at 1/4/16 banks) for
//! one operation and width, and is what the figure generators in `simdram-bench` call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ambit;
mod cpu;
mod gpu;
mod platform;

pub use ambit::{ambit_machine, paper_ambit};
pub use cpu::CpuModel;
pub use gpu::GpuModel;
pub use platform::{platform_performance, Platform, PlatformPerf};
