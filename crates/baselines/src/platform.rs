//! Unified platform comparison used by the figure generators.

use std::fmt;

use simdram_core::{pud_performance, SimdramConfig};
use simdram_logic::Operation;
use simdram_uprog::Target;

use crate::cpu::CpuModel;
use crate::gpu::GpuModel;

/// Throughput/energy summary of one platform for one (operation, width) point.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformPerf {
    /// Sustained throughput in giga-operations (elements) per second.
    pub throughput_gops: f64,
    /// Average energy per element in nanojoules.
    pub energy_per_element_nj: f64,
    /// Energy efficiency in giga-operations per second per watt.
    pub gops_per_watt: f64,
}

/// The platforms compared in the paper's throughput and energy figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Multi-core CPU baseline.
    Cpu,
    /// Discrete GPU baseline.
    Gpu,
    /// Ambit: processing-using-DRAM with AND/OR/NOT building blocks (16 compute banks).
    Ambit,
    /// SIMDRAM with the given number of compute banks (the paper uses 1, 4 and 16).
    Simdram {
        /// Number of banks computing concurrently.
        banks: usize,
    },
}

impl Platform {
    /// The platforms shown in the paper's main figures, in display order.
    pub fn paper_set() -> Vec<Platform> {
        vec![
            Platform::Cpu,
            Platform::Gpu,
            Platform::Ambit,
            Platform::Simdram { banks: 1 },
            Platform::Simdram { banks: 4 },
            Platform::Simdram { banks: 16 },
        ]
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Platform::Cpu => write!(f, "CPU"),
            Platform::Gpu => write!(f, "GPU"),
            Platform::Ambit => write!(f, "Ambit"),
            Platform::Simdram { banks } => write!(f, "SIMDRAM:{banks}"),
        }
    }
}

/// Evaluates `op` at `width` bits on `platform`, returning its throughput/energy summary.
pub fn platform_performance(platform: Platform, op: Operation, width: usize) -> PlatformPerf {
    match platform {
        Platform::Cpu => CpuModel::default().performance(op, width),
        Platform::Gpu => GpuModel::default().performance(op, width),
        Platform::Ambit => pud_perf(Target::Ambit, op, width, 16),
        Platform::Simdram { banks } => pud_perf(Target::Simdram, op, width, banks),
    }
}

fn pud_perf(target: Target, op: Operation, width: usize, banks: usize) -> PlatformPerf {
    let config = SimdramConfig::paper_banks(banks);
    let point = pud_performance(target, op, width, &config);
    PlatformPerf {
        throughput_gops: point.throughput_gops,
        energy_per_element_nj: point.energy_per_element_nj,
        gops_per_watt: point.gops_per_watt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_has_six_platforms() {
        assert_eq!(Platform::paper_set().len(), 6);
        assert_eq!(Platform::Simdram { banks: 16 }.to_string(), "SIMDRAM:16");
    }

    #[test]
    fn simdram_16_banks_beats_every_baseline_on_addition_throughput() {
        let simdram = platform_performance(Platform::Simdram { banks: 16 }, Operation::Add, 32);
        for baseline in [Platform::Cpu, Platform::Gpu, Platform::Ambit] {
            let other = platform_performance(baseline, Operation::Add, 32);
            assert!(
                simdram.throughput_gops > other.throughput_gops,
                "SIMDRAM:16 should beat {baseline}"
            );
        }
    }

    #[test]
    fn simdram_is_more_energy_efficient_than_cpu_and_gpu() {
        let simdram = platform_performance(Platform::Simdram { banks: 16 }, Operation::Add, 32);
        let cpu = platform_performance(Platform::Cpu, Operation::Add, 32);
        let gpu = platform_performance(Platform::Gpu, Operation::Add, 32);
        assert!(simdram.gops_per_watt > cpu.gops_per_watt * 50.0);
        assert!(simdram.gops_per_watt > gpu.gops_per_watt * 5.0);
    }

    #[test]
    fn simdram_beats_ambit_by_the_expected_margin_on_addition() {
        // The paper reports up to ~5× throughput improvement over Ambit across the 16
        // operations; addition should land comfortably above 1.5× and below 10×.
        let simdram = platform_performance(Platform::Simdram { banks: 16 }, Operation::Add, 32);
        let ambit = platform_performance(Platform::Ambit, Operation::Add, 32);
        let speedup = simdram.throughput_gops / ambit.throughput_gops;
        assert!(
            speedup > 1.5 && speedup < 10.0,
            "speedup over Ambit was {speedup}"
        );
    }

    #[test]
    fn gpu_beats_one_bank_simdram_on_some_widths() {
        // With a single compute bank SIMDRAM's advantage shrinks; the GPU should be at least
        // competitive for narrow elements, reproducing the crossover the paper discusses.
        let simdram1 = platform_performance(Platform::Simdram { banks: 1 }, Operation::Add, 64);
        let gpu = platform_performance(Platform::Gpu, Operation::Add, 8);
        assert!(gpu.throughput_gops > simdram1.throughput_gops * 0.5);
    }
}
