//! The Ambit baseline machine.
//!
//! Ambit (MICRO 2017) is the processing-using-DRAM design SIMDRAM extends. It computes with
//! the same substrate primitives (triple-row activation, dual-contact cells) but builds
//! every operation out of two-input AND/OR plus NOT, and has no framework for generating
//! new operations — its more complex operations are hand-built from those blocks. In this
//! reproduction the Ambit baseline is the same [`SimdramMachine`] driven by AND/OR/NOT
//! (AIG-derived) μPrograms, which models exactly the command-count disadvantage the paper
//! measures.

use simdram_core::{CoreError, SimdramConfig, SimdramMachine};
use simdram_uprog::Target;

/// Builds an Ambit-style machine: identical DRAM geometry, AND/OR/NOT μPrograms.
///
/// # Errors
///
/// Returns an error if the configuration is invalid.
pub fn ambit_machine(mut config: SimdramConfig) -> Result<SimdramMachine, CoreError> {
    config.target = Target::Ambit;
    SimdramMachine::new(config)
}

/// Builds the paper's Ambit comparison point (16 compute banks, full DDR4 geometry).
///
/// # Errors
///
/// Returns an error if the default configuration is invalid (it is not).
pub fn paper_ambit() -> Result<SimdramMachine, CoreError> {
    ambit_machine(SimdramConfig::paper_banks(16))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdram_logic::Operation;

    #[test]
    fn ambit_machine_uses_the_ambit_target() {
        let machine = ambit_machine(SimdramConfig::functional_test()).unwrap();
        assert_eq!(machine.config().target, Target::Ambit);
    }

    #[test]
    fn ambit_computes_correct_results() {
        let mut machine = ambit_machine(SimdramConfig::functional_test()).unwrap();
        let a = machine.alloc_and_write(8, &[3, 200, 77]).unwrap();
        let b = machine.alloc_and_write(8, &[5, 100, 77]).unwrap();
        let (max, _) = machine.binary(Operation::Max, &a, &b).unwrap();
        assert_eq!(machine.read(&max).unwrap(), vec![5, 200, 77]);
    }
}
