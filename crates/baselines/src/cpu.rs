//! Analytic multi-core CPU baseline.
//!
//! The paper compares SIMDRAM against a multi-core out-of-order CPU running vectorized
//! (AVX-style) code over data resident in main memory. For the streaming, element-wise
//! operations in the evaluation the CPU is overwhelmingly **memory-bandwidth bound**: every
//! element must cross the memory channel at least twice (two source operands) and the result
//! must be written back, so sustained throughput is `bandwidth / bytes-per-element`, capped
//! by the vector units' peak rate. Energy is dominated by package power over the execution
//! time plus the DRAM channel energy for the data movement.
//!
//! The default parameters describe a 16-core desktop-class part with four DDR4-2400
//! channels. Absolute numbers are configuration constants; the reproduction only relies on
//! their order of magnitude.

use simdram_logic::Operation;

use crate::platform::PlatformPerf;

/// Parameters of the analytic CPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Number of cores.
    pub cores: usize,
    /// Sustained clock frequency in GHz.
    pub frequency_ghz: f64,
    /// SIMD register width in bits (256 = AVX2).
    pub simd_width_bits: usize,
    /// Vector ALU issue ports per core.
    pub vector_ports: usize,
    /// Sustained memory bandwidth in GB/s across all channels.
    pub memory_bandwidth_gbs: f64,
    /// Package power under full load, in watts.
    pub package_power_w: f64,
    /// DRAM channel energy per bit moved, in nanojoules.
    pub channel_energy_nj_per_bit: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            cores: 16,
            frequency_ghz: 3.5,
            simd_width_bits: 256,
            vector_ports: 2,
            memory_bandwidth_gbs: 76.8, // 4 × DDR4-2400 channels
            package_power_w: 140.0,
            channel_energy_nj_per_bit: 0.004,
        }
    }
}

impl CpuModel {
    /// Creates the default 16-core AVX2 model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Relative instruction cost of one element of `op` (1.0 = a single vector ALU op).
    fn op_cost(op: Operation) -> f64 {
        match op {
            Operation::Mul => 1.5,
            Operation::Div => 8.0,
            Operation::BitCount => 1.5,
            Operation::Max | Operation::Min | Operation::IfElse => 1.5,
            Operation::Abs | Operation::Relu => 1.2,
            _ => 1.0,
        }
    }

    /// Bytes that cross the memory channel per element (sources + destination).
    fn bytes_per_element(op: Operation, width: usize) -> f64 {
        let operand_bytes = (width as f64 / 8.0).max(1.0);
        let sources = if op.uses_second_operand() { 2.0 } else { 1.0 };
        let dest = (op.output_width(width) as f64 / 8.0).max(0.125);
        sources * operand_bytes + dest
    }

    /// Peak compute throughput for `op` at `width` bits, in giga-elements per second.
    pub fn compute_throughput_gops(&self, op: Operation, width: usize) -> f64 {
        let lanes = (self.simd_width_bits / width.max(8)).max(1) as f64;
        self.cores as f64 * self.frequency_ghz * self.vector_ports as f64 * lanes
            / Self::op_cost(op)
    }

    /// Memory-bandwidth-bound throughput for `op` at `width` bits, in giga-elements/s.
    pub fn memory_throughput_gops(&self, op: Operation, width: usize) -> f64 {
        self.memory_bandwidth_gbs / Self::bytes_per_element(op, width)
    }

    /// Sustained throughput (the minimum of the compute and memory bounds).
    pub fn throughput_gops(&self, op: Operation, width: usize) -> f64 {
        self.compute_throughput_gops(op, width)
            .min(self.memory_throughput_gops(op, width))
    }

    /// Energy per element in nanojoules: package power over the per-element time plus the
    /// channel energy of the element's data movement.
    pub fn energy_per_element_nj(&self, op: Operation, width: usize) -> f64 {
        let throughput = self.throughput_gops(op, width); // elements per ns
        let package = self.package_power_w / throughput; // W / (elem/ns) = nJ per element
        let movement = Self::bytes_per_element(op, width) * 8.0 * self.channel_energy_nj_per_bit;
        package + movement
    }

    /// Full performance summary for one operation/width point.
    pub fn performance(&self, op: Operation, width: usize) -> PlatformPerf {
        let throughput = self.throughput_gops(op, width);
        let energy = self.energy_per_element_nj(op, width);
        PlatformPerf {
            throughput_gops: throughput,
            energy_per_element_nj: energy,
            gops_per_watt: 1.0 / energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_operations_are_memory_bound() {
        let cpu = CpuModel::default();
        assert!(
            cpu.memory_throughput_gops(Operation::Add, 32)
                < cpu.compute_throughput_gops(Operation::Add, 32)
        );
        let perf = cpu.performance(Operation::Add, 32);
        assert!(
            (perf.throughput_gops - cpu.memory_throughput_gops(Operation::Add, 32)).abs() < 1e-9
        );
    }

    #[test]
    fn division_is_slower_than_addition() {
        let cpu = CpuModel::default();
        assert!(
            cpu.compute_throughput_gops(Operation::Div, 32)
                < cpu.compute_throughput_gops(Operation::Add, 32)
        );
    }

    #[test]
    fn narrower_elements_are_faster() {
        let cpu = CpuModel::default();
        assert!(cpu.throughput_gops(Operation::Add, 8) > cpu.throughput_gops(Operation::Add, 64));
    }

    #[test]
    fn energy_includes_package_and_movement() {
        let cpu = CpuModel::default();
        let e = cpu.energy_per_element_nj(Operation::Add, 32);
        assert!(
            e > 10.0 && e < 100.0,
            "unexpected CPU energy {e} nJ/element"
        );
        let perf = cpu.performance(Operation::Add, 32);
        assert!((perf.gops_per_watt - 1.0 / e).abs() < 1e-12);
    }
}
