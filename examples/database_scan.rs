//! In-memory database scanning with SIMDRAM: a BitWeaving-style column scan plus a
//! TPC-H-style predicated aggregation.
//!
//! Run with `cargo run --example database_scan`.
//!
//! Every row of the column is one SIMD lane, so a single relational bbop evaluates the
//! predicate over the whole column; the example also shows the same work running on the
//! Ambit baseline and compares the DRAM command counts.

use simdram_apps::bitweaving::{BitWeavingScan, ScanPredicate};
use simdram_apps::tpch::TpchQuery6;
use simdram_apps::Kernel;
use simdram_baselines::ambit_machine;
use simdram_core::{SimdramConfig, SimdramMachine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scan = BitWeavingScan::new(2_000, 12, ScanPredicate::Between(500, 1_500), 42);
    let query = TpchQuery6::new(1_500, 7);

    println!("== SIMDRAM ==");
    let mut simdram = SimdramMachine::new(SimdramConfig::demo())?;
    for kernel in [&scan as &dyn Kernel, &query] {
        let run = kernel.run(&mut simdram)?;
        println!(
            "{:<12} {} rows, {} bbops, verified: {}, {:.1} µs in DRAM, {:.1} µJ",
            run.name,
            run.output_elements,
            run.bbops,
            run.verified,
            run.compute_latency_ns / 1_000.0,
            run.compute_energy_nj / 1_000.0
        );
    }

    println!("\n== Ambit baseline (same substrate, AND/OR/NOT μPrograms) ==");
    let mut ambit = ambit_machine(SimdramConfig::demo())?;
    for kernel in [&scan as &dyn Kernel, &query] {
        let run = kernel.run(&mut ambit)?;
        println!(
            "{:<12} verified: {}, {:.1} µs in DRAM, {:.1} µJ",
            run.name,
            run.verified,
            run.compute_latency_ns / 1_000.0,
            run.compute_energy_nj / 1_000.0
        );
    }

    println!(
        "\nSIMDRAM finishes the same scans faster because its MAJ/NOT μPrograms issue fewer\n\
         row activations than Ambit's AND/OR/NOT sequences (see `cargo run -p simdram-bench \
         -- --suite commands`)."
    );
    Ok(())
}
