//! The deferred dataflow frontend end to end: build → compile → execute.
//!
//! Run with `cargo run --example plan_demo` (honors the `SIMDRAM_EXEC` policy override —
//! CI runs it under both `sequential` and `threaded`).
//!
//! The example computes a TPC-H-style predicated revenue expression over one plan and
//! checks it against both a host reference and the eager op-by-op machine API, then
//! prints the plan-level accounting: the fused schedule issues strictly fewer broadcasts
//! than eager issue while remaining bit-identical.

use simdram_core::{PlanBuilder, SimdramConfig, SimdramMachine};
use simdram_logic::Operation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = SimdramMachine::new(SimdramConfig::demo())?;
    println!(
        "machine: {} lanes, {:?} execution policy",
        machine.lanes(),
        machine.execution_policy()
    );

    let n = 4_096;
    let price: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 13) % 200 + 1).collect();
    let discount: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % 11).collect();

    // revenue = (discount in [3, 7]) ? price × discount : 0, all in DRAM.
    let price_vec = machine.alloc_and_write(16, &price)?;
    let discount_vec = machine.alloc_and_write(16, &discount)?;

    // ---------------------------------------------------------------- build the plan
    let mut s = PlanBuilder::new();
    let p = s.input(&price_vec);
    let d = s.input(&discount_vec);
    let low = s.constant(16, n, 3)?;
    let high = s.constant(16, n, 7)?;
    let zero = s.constant(16, n, 0)?;
    let ge_low = s.greater_equal(d, low)?;
    let le_high = s.greater_equal(high, d)?;
    let selected = s.min(ge_low, le_high)?;
    let revenue = s.mul(p, d)?;
    let masked = s.select(selected, revenue, zero)?;
    let out = s.materialize(masked)?;

    // ------------------------------------------------------------------- compile it
    let plan = s.compile()?;
    println!(
        "plan: {} nodes, {} steps in {} fused batches, {} pooled temp rows",
        plan.node_count(),
        plan.step_count(),
        plan.batch_count(),
        plan.temp_rows()
    );

    // -------------------------------------------------------------------- run it
    let exec = machine.run_plan(&plan)?;
    let produced = machine.read(exec.output(out))?;
    println!("{}", exec.report());
    println!(
        "broadcast savings vs op-by-op: {:.2}x ({} -> {})",
        exec.report().broadcast_savings(),
        exec.report().eager_broadcasts,
        exec.report().broadcasts
    );

    // ------------------------------------------------- verify against host + eager
    let reference: Vec<u64> = price
        .iter()
        .zip(&discount)
        .map(|(&p, &d)| {
            if (3..=7).contains(&d) {
                (p * d) & 0xFFFF
            } else {
                0
            }
        })
        .collect();
    if produced != reference {
        eprintln!("MISMATCH: plan result diverged from the host reference");
        std::process::exit(1);
    }

    let mut eager = SimdramMachine::new(SimdramConfig::demo())?;
    let p = eager.alloc_and_write(16, &price)?;
    let d = eager.alloc_and_write(16, &discount)?;
    let low = eager.alloc(16, n)?;
    eager.init(&low, 3)?;
    let high = eager.alloc(16, n)?;
    eager.init(&high, 7)?;
    let zero = eager.alloc(16, n)?;
    eager.init(&zero, 0)?;
    let (ge_low, _) = eager.binary(Operation::GreaterEqual, &d, &low)?;
    let (le_high, _) = eager.binary(Operation::GreaterEqual, &high, &d)?;
    let (selected, _) = eager.binary(Operation::Min, &ge_low, &le_high)?;
    let (revenue, _) = eager.binary(Operation::Mul, &p, &d)?;
    let (masked, _) = eager.select(&selected, &revenue, &zero)?;
    let eager_result = eager.read(&masked)?;
    if produced != eager_result {
        eprintln!("MISMATCH: plan result diverged from the eager op-by-op path");
        std::process::exit(1);
    }
    let eager_broadcasts = eager.estimate().broadcasts;
    println!(
        "verified: plan == eager == host reference over {n} lanes \
         (eager issued {eager_broadcasts} broadcasts)"
    );
    assert!(exec.report().broadcasts < eager_broadcasts);
    Ok(())
}
