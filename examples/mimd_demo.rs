//! MIMD dispatch windows + multi-device sharding, end to end.
//!
//! Run with `cargo run --example mimd_demo` (honors `SIMDRAM_EXEC`; CI runs it under
//! both policies). The example exits non-zero if any simulated result diverges from
//! its solo-machine or host reference — it is a checked walkthrough, not a printout.
//!
//! Three acts:
//!
//! 1. **Control divergence as one dispatch.** The kernel `y = x ≥ t ? x - t : t + x`
//!    diverges per element. SIMD handles that with predication (every lane runs both
//!    sides); here the lanes are partitioned by branch onto disjoint subarray
//!    reservations and both branch μPrograms (`Sub` and `Add`) issue as ONE
//!    heterogeneous MIMD window via `run_mimd_window`.
//! 2. **Mixed-width windows inside one plan.** Independent same-level steps of
//!    different lane widths — forcibly serialized before MIMD windows — co-issue, so
//!    the plan completes in fewer dispatch windows than it has batches.
//! 3. **Sharded fleet.** The same elementwise work spread across 2 ranked devices
//!    under an interleaved shard map, including an explicit reshard whose cross-device
//!    movement is charged to the link cost model.

use simdram_core::{
    LinkModel, PlanBuilder, ShardPolicy, ShardedMachine, SimdramConfig, SimdramMachine,
};
use simdram_logic::Operation;

fn check(label: &str, got: &[u64], want: &[u64]) {
    if got != want {
        eprintln!("MISMATCH in {label}: simulated results diverge from the reference");
        std::process::exit(1);
    }
    println!("  ✓ {label}: {} elements bit-identical", got.len());
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = SimdramMachine::new(SimdramConfig::demo())?;
    println!(
        "machine: {} lanes/subarray × {} compute chunks, {:?} execution policy",
        machine.lanes_per_subarray(),
        machine.compute_chunks(),
        machine.execution_policy()
    );

    // ---------------------------------------------------- act 1: control divergence
    let n = 2_048usize;
    let threshold = 128u64;
    let x_vals: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) & 0xFF).collect();

    // Host-side branch partition: the data-dependent control flow.
    let (mut high, mut low): (Vec<u64>, Vec<u64>) = (Vec::new(), Vec::new());
    for &x in &x_vals {
        if x >= threshold {
            high.push(x);
        } else {
            low.push(x);
        }
    }
    println!(
        "act 1: kernel `y = x >= {threshold} ? x - {threshold} : {threshold} + x` \
         diverges into {} / {} lanes",
        high.len(),
        low.len()
    );

    // Each branch gets its own disjoint reservation, inputs included.
    let chunks_for = |m: &SimdramMachine, len: usize| len.div_ceil(m.lanes_per_subarray());
    let r_high = machine.reserve_subarrays(chunks_for(&machine, high.len()))?;
    let r_low = machine.reserve_subarrays(chunks_for(&machine, low.len()))?;
    let x_high = machine.alloc(8, high.len())?;
    let x_low = machine.alloc(8, low.len())?;
    let t_high = machine.alloc(8, high.len())?;
    let t_low = machine.alloc(8, low.len())?;
    machine.write_to(&r_high, &x_high, &high)?;
    machine.write_to(&r_low, &x_low, &low)?;
    machine.write_to(&r_high, &t_high, &vec![threshold; high.len()])?;
    machine.write_to(&r_low, &t_low, &vec![threshold; low.len()])?;

    // One single-window plan per branch, running *different* μPrograms.
    let branch_plan =
        |op: Operation, x: &simdram_core::SimdVector, t: &simdram_core::SimdVector| {
            let mut s = PlanBuilder::new();
            let (xe, te) = (s.input(x), s.input(t));
            let y = if op == Operation::Sub {
                s.sub(xe, te)?
            } else {
                s.add(te, xe)?
            };
            let out = s.materialize(y)?;
            Ok::<_, simdram_core::CoreError>((s.compile()?, out))
        };
    let (plan_high, out_high) = branch_plan(Operation::Sub, &x_high, &t_high)?;
    let (plan_low, out_low) = branch_plan(Operation::Add, &x_low, &t_low)?;

    let dispatches_before = machine.estimate().broadcasts;
    let execs = machine.run_mimd_window(&[(&plan_high, &r_high), (&plan_low, &r_low)])?;
    let dispatches = machine.estimate().broadcasts - dispatches_before;
    println!(
        "  both branch μPrograms issued in {dispatches} dispatch ({} heterogeneous MIMD \
         windows so far)",
        machine.mimd_windows_issued()
    );
    if dispatches != 1 {
        eprintln!("MISMATCH: expected exactly one fused dispatch, got {dispatches}");
        std::process::exit(1);
    }

    // Verify against the host and against solo runs of each branch.
    let want_high: Vec<u64> = high.iter().map(|&x| x - threshold).collect();
    let want_low: Vec<u64> = low.iter().map(|&x| (threshold + x) & 0xFF).collect();
    let got_high = machine.read_from(&r_high, execs[0].output(out_high))?;
    let got_low = machine.read_from(&r_low, execs[1].output(out_low))?;
    check("divergent branch x >= t (Sub)", &got_high, &want_high);
    check("divergent branch x <  t (Add)", &got_low, &want_low);

    let mut solo = SimdramMachine::new(SimdramConfig::demo())?;
    let sx = solo.alloc_and_write(8, &high)?;
    let st = solo.alloc_and_write(8, &vec![threshold; high.len()])?;
    let (solo_out, _) = solo.binary(Operation::Sub, &sx, &st)?;
    check(
        "MIMD window vs solo machine",
        &got_high,
        &solo.read(&solo_out)?,
    );

    // ------------------------------------------- act 2: mixed-width window in a plan
    let wide_vals: Vec<u64> = (0..1_024u64).map(|i| (i * 91 + 3) & 0xFF).collect();
    let narrow_vals: Vec<u64> = (0..96u64).map(|i| (i * 17 + 5) & 0xFFFF).collect();
    let wide = machine.alloc_and_write(8, &wide_vals)?;
    let narrow = machine.alloc_and_write(16, &narrow_vals)?;
    let mut s = PlanBuilder::new();
    let we = s.input(&wide);
    let ne = s.input(&narrow);
    let c = s.constant(16, narrow_vals.len(), 1_000)?;
    let wa = s.abs(we)?; // 8-bit op over 1024 lanes
    let nm = s.max(ne, c)?; // 16-bit op over 96 lanes — same level, different width
    let out_w = s.materialize(wa)?;
    let out_n = s.materialize(nm)?;
    let plan = s.compile()?;
    println!(
        "act 2: mixed-width plan has {} batches in {} dispatch windows ({} mixed)",
        plan.batch_count(),
        plan.window_count(),
        plan.mixed_window_count()
    );
    if plan.window_count() >= plan.batch_count() {
        eprintln!("MISMATCH: MIMD windows saved no dispatches");
        std::process::exit(1);
    }
    let exec = machine.run_plan(&plan)?;
    println!(
        "  report: {} broadcasts issued in {} windows",
        exec.report().broadcasts,
        exec.report().windows
    );
    let want_w: Vec<u64> = wide_vals
        .iter()
        .map(|&v| Operation::Abs.reference(8, v, 0, false))
        .collect();
    let want_n: Vec<u64> = narrow_vals.iter().map(|&v| v.max(1_000)).collect();
    check(
        "8-bit lane group",
        &machine.read(exec.output(out_w))?,
        &want_w,
    );
    check(
        "16-bit lane group",
        &machine.read(exec.output(out_n))?,
        &want_n,
    );

    // --------------------------------------------------------- act 3: sharded fleet
    let mut fleet = ShardedMachine::new(
        SimdramConfig::demo(),
        2,
        ShardPolicy::Interleaved,
        LinkModel::default(),
    )?;
    let a = fleet.alloc_and_write(8, &x_vals)?;
    let b = fleet.alloc_and_write(8, &vec![threshold; n])?;
    let sum = fleet.binary(Operation::Add, &a, &b)?;
    let want_sum: Vec<u64> = x_vals.iter().map(|&x| (x + threshold) & 0xFF).collect();
    check("2-device interleaved add", &fleet.read(&sum)?, &want_sum);

    let contiguous = fleet.reshard(&sum, ShardPolicy::Contiguous)?;
    check("after reshard", &fleet.read(&contiguous)?, &want_sum);
    let movement = fleet.movement();
    let estimate = fleet.estimate();
    println!(
        "act 3: reshard moved {} elements ({} B) across the link: {:.1} ns, {:.2} nJ \
         charged; fleet makespan {:.1} ns over {} devices",
        movement.elements,
        movement.bytes,
        movement.latency_ns,
        movement.energy_nj,
        estimate.makespan_ns(),
        fleet.devices()
    );
    if movement.elements == 0 || estimate.movement_estimate.broadcasts == 0 {
        eprintln!("MISMATCH: interleaved→contiguous reshard charged no movement");
        std::process::exit(1);
    }

    println!("all MIMD + sharding checks passed");
    Ok(())
}
