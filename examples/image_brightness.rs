//! Image processing with SIMDRAM: saturating brightness adjustment over a whole image in a
//! handful of bbop instructions.
//!
//! Run with `cargo run --example image_brightness`.

use simdram_apps::brightness::Brightness;
use simdram_apps::Kernel;
use simdram_core::{SimdramConfig, SimdramMachine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 64;
    let height = 32;
    let delta = 75;

    let kernel = Brightness::new(width, height, delta, 7);
    let mut machine = SimdramMachine::new(SimdramConfig::demo())?;
    let run = kernel.run(&mut machine)?;

    println!("Brightened a {width}x{height} image by {delta} grey levels entirely inside DRAM:");
    println!("  pixels processed : {}", run.output_elements);
    println!("  bbop operations  : {}", run.bbops);
    println!("  result verified  : {}", run.verified);
    println!(
        "  DRAM latency     : {:.1} µs",
        run.compute_latency_ns / 1_000.0
    );
    println!(
        "  DRAM energy      : {:.1} µJ",
        run.compute_energy_nj / 1_000.0
    );
    println!(
        "\nEach pixel is one SIMD lane (one DRAM bitline); a full-size SIMDRAM configuration\n\
         processes {} pixels per bbop instead of the {} used here.",
        SimdramConfig::paper_banks(16).total_lanes(),
        SimdramConfig::demo().total_lanes()
    );
    Ok(())
}
