//! Quantized neural-network inference with SIMDRAM.
//!
//! Run with `cargo run --example neural_network`.
//!
//! The example functionally executes a quantized fully-connected layer in DRAM (each SIMD
//! lane computes one output neuron) and then uses the analytic platform models to estimate
//! how long full VGG-13 / VGG-16 / LeNet-5 inference passes would take on the CPU, the GPU,
//! Ambit and SIMDRAM — the comparison behind the paper's application figure.

use simdram_apps::analysis::{cost_on_platform, speedup};
use simdram_apps::lenet::lenet_kernel;
use simdram_apps::nn::QuantizedLinear;
use simdram_apps::vgg::{vgg13_kernel, vgg16_kernel};
use simdram_apps::Kernel;
use simdram_baselines::Platform;
use simdram_core::{SimdramConfig, SimdramMachine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Functional proof: a quantized 64×128 fully-connected layer, one output neuron per lane.
    let mut machine = SimdramMachine::new(SimdramConfig::demo())?;
    let layer = QuantizedLinear::new(64, 128, 2024);
    let outputs = layer.run_on(&mut machine)?;
    assert_eq!(outputs, layer.reference());
    println!(
        "Quantized 64x128 fully-connected layer computed in DRAM: {} neurons, all correct.",
        outputs.len()
    );
    println!("{}\n", machine.stats());

    // Analytic comparison for the full networks.
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>14} {:>16}",
        "network", "CPU (ms)", "GPU (ms)", "Ambit (ms)", "SIMDRAM16 (ms)", "vs Ambit speedup"
    );
    for kernel in [vgg13_kernel(1), vgg16_kernel(2), lenet_kernel(3)] {
        let mix = kernel.op_mix();
        let cpu = cost_on_platform(Platform::Cpu, &mix);
        let gpu = cost_on_platform(Platform::Gpu, &mix);
        let ambit = cost_on_platform(Platform::Ambit, &mix);
        let simdram = cost_on_platform(Platform::Simdram { banks: 16 }, &mix);
        let costs = vec![cpu.clone(), gpu.clone(), ambit.clone(), simdram.clone()];
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>12.2} {:>14.2} {:>15.2}x",
            kernel.name(),
            cpu.time_ms,
            gpu.time_ms,
            ambit.time_ms,
            simdram.time_ms,
            speedup(&costs, Platform::Ambit, Platform::Simdram { banks: 16 })
        );
    }
    Ok(())
}
