//! The multi-tenant serving layer end to end: register → stage → submit → serve.
//!
//! Run with `cargo run --example serve_demo` (honors the `SIMDRAM_EXEC` policy
//! override — CI runs it under both `sequential` and `threaded`).
//!
//! Eight weighted tenants share one demo-size machine through a [`PlanServer`],
//! mixing the brightness, kNN and TPC-H plan shapes from the application suite.
//! Every result is checked bit-for-bit against a dedicated solo machine, and the
//! example asserts the serving headline: fused cross-tenant dispatch issues
//! strictly fewer broadcasts than running the tenants back-to-back.

use simdram_core::{Plan, PlanBuilder, PlanOutput, SimdVector, SimdramConfig, SimdramMachine};
use simdram_serve::{PlanServer, ServeConfig, TenantSpec};

/// Per-tenant vector length: two subarray chunks on the demo machine, so several
/// tenants still pack into each dispatch window.
const ELEMENTS: usize = 2_048;

#[derive(Clone, Copy)]
enum Shape {
    Brightness,
    Knn,
    Tpch,
}

impl Shape {
    fn name(self) -> &'static str {
        match self {
            Shape::Brightness => "brightness",
            Shape::Knn => "knn",
            Shape::Tpch => "tpch",
        }
    }
}

fn tenant_values(tenant: usize) -> Vec<u64> {
    (0..ELEMENTS as u64)
        .map(|i| (i * 37 + 11 * tenant as u64 + 13) & 0xFF)
        .collect()
}

/// Builds one tenant's plan over its machine-resident input.
fn build_plan(shape: Shape, input: &SimdVector) -> (Plan, PlanOutput) {
    let mut s = PlanBuilder::new();
    let x = s.input(input);
    let out = match shape {
        Shape::Brightness => {
            let delta = s.constant(8, ELEMENTS, 60).expect("const");
            let sat = s.constant(8, ELEMENTS, 0xFF).expect("const");
            let sum = s.add(x, delta).expect("add");
            let ok = s.greater_equal(sum, x).expect("compare");
            let result = s.select(ok, sum, sat).expect("select");
            s.materialize(result).expect("materialize")
        }
        Shape::Knn => {
            let q1 = s.constant(8, ELEMENTS, 90).expect("const");
            let q2 = s.constant(8, ELEMENTS, 200).expect("const");
            let d1 = s.sub(x, q1).expect("sub");
            let d2 = s.sub(x, q2).expect("sub");
            let a1 = s.abs(d1).expect("abs");
            let a2 = s.abs(d2).expect("abs");
            let sum = s.add(a1, a2).expect("add");
            s.materialize(sum).expect("materialize")
        }
        Shape::Tpch => {
            let low = s.constant(8, ELEMENTS, 3).expect("const");
            let high = s.constant(8, ELEMENTS, 7).expect("const");
            let zero = s.constant(8, ELEMENTS, 0).expect("const");
            let ge = s.greater_equal(x, low).expect("ge");
            let le = s.greater_equal(high, x).expect("le");
            let sel = s.min(ge, le).expect("min");
            let masked = s.select(sel, x, zero).expect("select");
            s.materialize(masked).expect("materialize")
        }
    };
    (s.compile().expect("compile"), out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SHAPES: [Shape; 3] = [Shape::Brightness, Shape::Knn, Shape::Tpch];
    let tenants = 8;

    // Two jobs per window: the demo machine has 160 data rows per subarray, and
    // eight staged inputs plus two in-flight jobs' outputs and pooled temporaries
    // fit comfortably — rows, not subarrays, are the binding resource.
    let config = ServeConfig {
        max_jobs_per_window: 2,
        ..ServeConfig::new()
    };
    let machine = SimdramMachine::new(SimdramConfig::demo())?;
    println!(
        "machine: {} lanes, {} compute chunks, {:?} execution policy",
        machine.lanes(),
        machine.compute_chunks(),
        machine.execution_policy()
    );
    let mut server = PlanServer::new(machine, config);

    // ---------------------------------------------------------- register + submit
    let mut jobs = Vec::new();
    for t in 0..tenants {
        let weight = (t as u64 % 3) + 1;
        let id = server.register_tenant(TenantSpec::new(format!("tenant-{t}")).with_weight(weight));
        let input = server.write_input(id, 8, &tenant_values(t))?;
        let shape = SHAPES[t % SHAPES.len()];
        let (plan, out) = build_plan(shape, &input);
        let job = server.submit(id, plan)?;
        jobs.push((t, shape, job, out));
    }
    println!("submitted {} jobs across {tenants} tenants", jobs.len());

    // ------------------------------------------------------------------- serve
    let report = server.serve()?;
    println!("{report}");

    // ------------------------------------------- verify against dedicated machines
    let mut sequential_dispatches = 0;
    for (t, shape, job, out) in &jobs {
        let mut solo = SimdramMachine::new(SimdramConfig::demo())?;
        let input = solo.alloc_and_write(8, &tenant_values(*t))?;
        let (plan, solo_out) = build_plan(*shape, &input);
        let exec = solo.run_plan(&plan)?;
        let expected = solo.read(exec.output(solo_out))?;
        sequential_dispatches += exec.report().broadcasts;

        let result = server.take_result(*job)?;
        if result.output(*out) != expected.as_slice() {
            eprintln!(
                "MISMATCH: tenant-{t} ({}) served result diverged from its solo run",
                shape.name()
            );
            std::process::exit(1);
        }
        println!(
            "tenant-{t:<2} {:<10} ok: {} elements, window {}, turnaround {:.1} us",
            shape.name(),
            result.output(*out).len(),
            result.window(),
            result.turnaround_ns() / 1e3
        );
    }

    println!(
        "verified: all {} served results are bit-identical to dedicated solo machines",
        jobs.len()
    );
    println!(
        "dispatch fusion: {} sequential -> {} fused ({:.2}x fewer)",
        report.sequential_dispatches,
        report.fused_dispatches,
        report.dispatch_savings()
    );
    assert_eq!(report.sequential_dispatches, sequential_dispatches);
    assert!(
        report.fused_dispatches < sequential_dispatches,
        "cross-tenant fusion must issue strictly fewer dispatches than sequential"
    );
    Ok(())
}
