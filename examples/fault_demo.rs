//! Fault injection and fault-tolerant execution, end to end.
//!
//! Run with `cargo run --release --example fault_demo`.
//!
//! Three acts:
//!
//! 1. **Technology sweep** — seeded TRA bit-flips at each node's *calibrated* failure
//!    rate (from the process-variation model), first unguarded (corruption lands in
//!    results) then guarded (redundant re-execution detects and retries). The demo
//!    exits with status 1 if any guarded run ever returns silently corrupted data —
//!    that is the one outcome the guard must make impossible.
//! 2. **Boosted-rate recovery** — injection dialed high enough to force retries, with
//!    the detection/retry/backoff ledger printed.
//! 3. **Graceful degradation** — a multi-tenant `PlanServer` over a machine with a
//!    persistent weak-cell map: faulting jobs are dropped with typed errors, the bad
//!    subarray is quarantined, and the server keeps serving on what remains.

use std::process::ExitCode;

use simdram_core::{CoreError, FaultModel, GuardMode, PlanBuilder, SimdramConfig, SimdramMachine};
use simdram_dram::variation::TechnologyNode;
use simdram_logic::Operation;
use simdram_serve::{PlanServer, ServeConfig, ServeError, TenantSpec};

/// One seed for the whole demo: every number printed is reproducible.
const SEED: u64 = 7;

fn machine(faults: FaultModel, guard: GuardMode) -> SimdramMachine {
    let mut config = SimdramConfig::demo();
    config.faults = faults;
    config.guard = guard;
    SimdramMachine::new(config).expect("demo config is valid")
}

/// Runs a 16-bit add over `len` lanes, returning the read-back results.
fn run_add(m: &mut SimdramMachine, len: usize) -> Result<Vec<u64>, CoreError> {
    let a_vals: Vec<u64> = (0..len as u64).map(|i| (i * 31 + 5) & 0xFFFF).collect();
    let b_vals: Vec<u64> = (0..len as u64).map(|i| (i * 17 + 11) & 0xFFFF).collect();
    let a = m.alloc_and_write(16, &a_vals)?;
    let b = m.alloc_and_write(16, &b_vals)?;
    let (sum, _) = m.binary(Operation::Add, &a, &b)?;
    m.read(&sum)
}

fn main() -> ExitCode {
    const LANES: usize = 4096;

    let expected = run_add(&mut machine(FaultModel::Off, GuardMode::Off), LANES)
        .expect("fault-free run cannot fail");

    // ----------------------------------------------------- Act 1: technology sweep
    println!("Act 1: seeded TRA injection at each node's calibrated failure rate");
    println!(
        "{:>6} {:>12} | {:>10} {:>10} | {:>10} {:>8} {:>9}",
        "node", "p(TRA flip)", "unguarded", "corrupted", "guarded", "retries", "outcome"
    );
    for node in TechnologyNode::ALL {
        let faults = FaultModel::tra_for_node(node, SEED);
        let probability = match faults {
            FaultModel::Tra { probability, .. } => probability,
            _ => 0.0,
        };

        let mut unguarded = machine(faults.clone(), GuardMode::Off);
        let corrupted = match run_add(&mut unguarded, LANES) {
            Ok(results) => results
                .iter()
                .zip(&expected)
                .filter(|(r, e)| r != e)
                .count(),
            Err(err) => panic!("unguarded runs never error: {err}"),
        };

        let mut guarded = machine(faults, GuardMode::Redundant { max_retries: 10 });
        let outcome = match run_add(&mut guarded, LANES) {
            Ok(results) if results == expected => "clean",
            Ok(_) => {
                eprintln!(
                    "FATAL: guarded run at {} returned corrupted data undetected",
                    node.name()
                );
                return ExitCode::FAILURE;
            }
            Err(CoreError::Fault(fault)) => {
                // Typed containment: still a *detected* outcome, never silent.
                println!(
                    "    (guarded run at {} exhausted retries: {fault})",
                    node.name()
                );
                "contained"
            }
            Err(err) => panic!("unexpected non-fault error: {err}"),
        };
        let log = guarded.fault_log();
        println!(
            "{:>6} {:>12.3e} | {:>10} {:>10} | {:>10} {:>8} {:>9}",
            node.name(),
            probability,
            unguarded.injected_faults(),
            corrupted,
            log.injected,
            log.retries,
            outcome
        );
    }

    // ------------------------------------------------- Act 2: boosted-rate recovery
    println!("\nAct 2: boosted injection (p=2e-5) to force the retry path");
    let mut boosted = machine(
        FaultModel::tra_with_probability(2e-5, SEED),
        GuardMode::Redundant { max_retries: 10 },
    );
    match run_add(&mut boosted, LANES) {
        Ok(results) if results == expected => {
            let log = boosted.fault_log();
            println!("  recovered bit-identically: {log}");
        }
        Ok(_) => {
            eprintln!("FATAL: boosted guarded run returned corrupted data undetected");
            return ExitCode::FAILURE;
        }
        Err(err) => println!("  contained with a typed error: {err}"),
    }

    // --------------------------------------------- Act 3: serving layer degradation
    println!("\nAct 3: weak-cell rowmap under a multi-tenant server");
    let mut config = SimdramConfig::functional_test();
    config.faults = FaultModel::rowmap(2);
    config.guard = GuardMode::redundant();
    let m = SimdramMachine::new(config).expect("functional_test config is valid");
    let mut server = PlanServer::new(m, ServeConfig::new());
    let alpha = server.register_tenant(TenantSpec::new("alpha"));
    let beta = server.register_tenant(TenantSpec::new("beta"));

    let mut jobs = Vec::new();
    for i in 0..8u64 {
        let tenant = if i % 2 == 0 { alpha } else { beta };
        let input = server
            .write_input(tenant, 8, &[i + 1, i + 2, i + 3])
            .expect("staging fits");
        let mut builder = PlanBuilder::new();
        let x = builder.input(&input);
        let two = builder.constant(8, 3, 2).expect("constant fits");
        let doubled = builder.add(x, two).expect("widths match");
        let out = builder.materialize(doubled).expect("materializable");
        let job = server
            .submit(tenant, builder.compile().expect("plan compiles"))
            .expect("admission succeeds");
        jobs.push((job, out, i));
    }

    let report = server
        .serve()
        .expect("faults are contained, serve never fails");
    for (job, out, i) in jobs {
        match server.take_result(job) {
            Ok(result) => {
                assert_eq!(
                    result.output(out),
                    &[i + 3, i + 4, i + 5],
                    "surviving jobs are exact"
                );
            }
            Err(ServeError::JobFaulted { job, report }) => {
                println!("  job {job} dropped with a typed fault: {report}");
            }
            Err(err) => panic!("unexpected serve error: {err}"),
        }
    }
    let health = server.health();
    println!("  {}", health);
    print!("{report}");
    if report.jobs_completed + report.jobs_faulted != 8 {
        eprintln!("FATAL: jobs neither completed nor typed-faulted");
        return ExitCode::FAILURE;
    }

    println!("\nAll guarded outcomes were either bit-identical or typed — no silent corruption.");
    ExitCode::SUCCESS
}
