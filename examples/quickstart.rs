//! Quickstart: the SIMDRAM framework end to end in a few dozen lines.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example walks through the paper's three steps for one operation (32-bit addition):
//! Step 1 synthesizes the MAJ/NOT circuit, Step 2 generates the μProgram, and Step 3
//! executes it on the simulated DRAM device — then checks the results and prints the cost
//! accounting.

use std::time::Instant;

use simdram_core::{ExecutionPolicy, PlanBuilder, SimdramConfig, SimdramMachine};
use simdram_logic::{Mig, Operation, WordCircuit};
use simdram_uprog::{build_program, CodegenOptions, Target};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------ Step 1: synthesis
    let circuit: WordCircuit<Mig> = WordCircuit::synthesize(Operation::Add, 32);
    println!(
        "Step 1: 32-bit addition as a majority-inverter graph: {} MAJ gates, depth {}",
        circuit.gate_count(),
        circuit.depth()
    );

    // --------------------------------------------------------- Step 2: μProgram generation
    let program = build_program(
        Target::Simdram,
        Operation::Add,
        32,
        CodegenOptions::optimized(),
    );
    println!(
        "Step 2: μProgram with {} DRAM commands ({} triple-row activations, {} reserved rows)",
        program.command_count(),
        program.tra_count(),
        program.temp_rows()
    );

    // ------------------------------------------------------------------ Step 3: execution
    // A small machine keeps the example fast; `SimdramConfig::paper_banks(16)` is the
    // full-size configuration used by the benchmarks.
    let mut machine = SimdramMachine::new(SimdramConfig::functional_test())?;

    let a_values: Vec<u64> = (0..512u64).map(|i| i * 3 + 7).collect();
    let b_values: Vec<u64> = (0..512u64).map(|i| i * 11 + 1).collect();

    let a = machine.alloc_and_write(32, &a_values)?;
    let b = machine.alloc_and_write(32, &b_values)?;
    let (sum, report) = machine.binary(Operation::Add, &a, &b)?;
    let results = machine.read(&sum)?;

    let all_correct = results
        .iter()
        .zip(a_values.iter().zip(&b_values))
        .all(|(&r, (&x, &y))| r == (x + y) & 0xFFFF_FFFF);
    println!(
        "Step 3: executed over {} SIMD lanes in {} subarray(s): {}",
        report.elements,
        report.subarrays_used,
        if all_correct {
            "all results correct"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "        latency {:.1} ns, energy {:.1} nJ, {:.2} GOPS, {:.1} GOPS/W",
        report.latency_ns,
        report.energy_nj,
        report.throughput_gops(),
        report.gops_per_watt()
    );

    println!("\nCumulative machine statistics:\n{}", machine.stats());

    // ------------------------------------------------- Step 4: deferred dataflow plans
    // Whole expressions compile into a Plan: independent operations fuse into one
    // broadcast batch, temporaries reuse rows, and the eager calls above are just sugar
    // over one-node plans. Here: range = max(a, b) − min(a, b) — the min and the max
    // are independent, so they execute in a single fused broadcast.
    machine.free(sum); // make room on the small functional machine
    let mut s = PlanBuilder::new();
    let (xa, xb) = (s.input(&a), s.input(&b));
    let low = s.min(xa, xb)?;
    let high = s.max(xa, xb)?;
    let range = s.sub(high, low)?;
    let out = s.materialize(range)?;
    let plan = s.compile()?;
    let exec = machine.run_plan(&plan)?;
    let range_results = machine.read(exec.output(out))?;
    let range_correct = range_results
        .iter()
        .zip(a_values.iter().zip(&b_values))
        .all(|(&r, (&x, &y))| r == x.max(y) - x.min(y));
    println!(
        "Step 4: compiled plan ran {} operations in {} fused broadcasts ({:.1}x fewer \
         than op-by-op): {}",
        exec.report().ops,
        exec.report().broadcasts,
        exec.report().broadcast_savings(),
        if range_correct {
            "all results correct"
        } else {
            "MISMATCH"
        }
    );

    // ------------------------------------------- Bonus: sequential vs. threaded broadcast
    // The same bbop, executed once per policy. The modelled DRAM cost is identical (the
    // hardware broadcasts commands to all subarrays in lock-step either way); what changes
    // is the *simulator's* wall-clock, which the threaded executor parallelizes across
    // host cores. Results are bit-identical by construction.
    let mut policy_results: Vec<Vec<u64>> = Vec::new();
    let mut timings = Vec::new();
    for (name, policy) in [
        ("sequential", ExecutionPolicy::Sequential),
        ("threaded", ExecutionPolicy::threaded()),
    ] {
        let mut config = SimdramConfig::demo(); // 4 banks × 4 subarrays = 16 chunks
        config.execution = policy;
        let mut m = SimdramMachine::new(config)?;
        let lanes = m.lanes();
        let xs: Vec<u64> = (0..lanes as u64).map(|i| i & 0xFFFF_FFFF).collect();
        let x = m.alloc_and_write(32, &xs)?;
        let y = m.alloc_and_write(32, &xs)?;
        let dst = m.alloc(32, lanes)?;
        let start = Instant::now();
        m.execute(Operation::Mul, &dst, &x, Some(&y), None)?;
        let elapsed = start.elapsed();
        timings.push((name, elapsed));
        policy_results.push(m.read(&dst)?);
    }
    assert_eq!(
        policy_results[0], policy_results[1],
        "policies must be bit-identical"
    );
    let (seq_name, seq_time) = timings[0];
    let (thr_name, thr_time) = timings[1];
    println!(
        "\nBroadcast engine ({} lanes, 32-bit multiply, results identical):",
        policy_results[0].len()
    );
    println!("  {seq_name:<10} {:>10.1} ms", seq_time.as_secs_f64() * 1e3);
    println!(
        "  {thr_name:<10} {:>10.1} ms  ({:.2}x vs sequential on this host)",
        thr_time.as_secs_f64() * 1e3,
        seq_time.as_secs_f64() / thr_time.as_secs_f64()
    );
    Ok(())
}
