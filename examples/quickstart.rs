//! Quickstart: the SIMDRAM framework end to end in a few dozen lines.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example walks through the paper's three steps for one operation (32-bit addition):
//! Step 1 synthesizes the MAJ/NOT circuit, Step 2 generates the μProgram, and Step 3
//! executes it on the simulated DRAM device — then checks the results and prints the cost
//! accounting.

use simdram_core::{SimdramConfig, SimdramMachine};
use simdram_logic::{Mig, Operation, WordCircuit};
use simdram_uprog::{build_program, CodegenOptions, Target};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------ Step 1: synthesis
    let circuit: WordCircuit<Mig> = WordCircuit::synthesize(Operation::Add, 32);
    println!(
        "Step 1: 32-bit addition as a majority-inverter graph: {} MAJ gates, depth {}",
        circuit.gate_count(),
        circuit.depth()
    );

    // --------------------------------------------------------- Step 2: μProgram generation
    let program = build_program(
        Target::Simdram,
        Operation::Add,
        32,
        CodegenOptions::optimized(),
    );
    println!(
        "Step 2: μProgram with {} DRAM commands ({} triple-row activations, {} reserved rows)",
        program.command_count(),
        program.tra_count(),
        program.temp_rows()
    );

    // ------------------------------------------------------------------ Step 3: execution
    // A small machine keeps the example fast; `SimdramConfig::paper_banks(16)` is the
    // full-size configuration used by the benchmarks.
    let mut machine = SimdramMachine::new(SimdramConfig::functional_test())?;

    let a_values: Vec<u64> = (0..512u64).map(|i| i * 3 + 7).collect();
    let b_values: Vec<u64> = (0..512u64).map(|i| i * 11 + 1).collect();

    let a = machine.alloc_and_write(32, &a_values)?;
    let b = machine.alloc_and_write(32, &b_values)?;
    let (sum, report) = machine.binary(Operation::Add, &a, &b)?;
    let results = machine.read(&sum)?;

    let all_correct = results
        .iter()
        .zip(a_values.iter().zip(&b_values))
        .all(|(&r, (&x, &y))| r == (x + y) & 0xFFFF_FFFF);
    println!(
        "Step 3: executed over {} SIMD lanes in {} subarray(s): {}",
        report.elements,
        report.subarrays_used,
        if all_correct {
            "all results correct"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "        latency {:.1} ns, energy {:.1} nJ, {:.2} GOPS, {:.1} GOPS/W",
        report.latency_ns,
        report.energy_nj,
        report.throughput_gops(),
        report.gops_per_watt()
    );

    println!("\nCumulative machine statistics:\n{}", machine.stats());
    Ok(())
}
