//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access to crates.io, so this
//! crate vendors the *exact* API surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] extension methods `random` /
//! `random_range` — backed by the xoshiro256++ generator. It is deliberately tiny: if you
//! need more of the real `rand` API, extend this file or swap the path dependency for the
//! real crate once a registry is reachable.
//!
//! Determinism matters more than distribution quality here: every consumer seeds through
//! [`SeedableRng::seed_from_u64`], and tests rely on a fixed seed reproducing the same
//! stream on every platform. xoshiro256++ with a SplitMix64 seeding pass gives that with
//! good statistical behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s. Mirrors `rand_core::RngCore` (minus the byte-level methods
/// this workspace never calls).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose output stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with the conventional 53-bit mantissa construction.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with a 24-bit mantissa construction.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniformly distributed member. Mirrors
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Extension methods every generator gets for free. Mirrors the `rand` 0.9 `Rng` trait
/// under its extension-trait name.
pub trait RngExt: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`. Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws a boolean that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64, as recommended by the xoshiro authors.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
