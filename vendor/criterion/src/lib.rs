//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this crate vendors the
//! subset of criterion's API that the workspace's benches use: [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups with
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::throughput`] / [`BenchmarkGroup::sample_size`], [`BenchmarkId`],
//! [`Throughput`] and [`Bencher::iter`].
//!
//! It is a *measuring* stand-in, not a statistics engine: each benchmark is warmed up and
//! then timed for a fixed budget, and the mean time per iteration is printed in a
//! `name ... time: x ns/iter` line. There is no outlier analysis, no HTML report and no
//! saved baseline — swap the path dependency for real criterion once a registry is
//! reachable if you need those.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// An opaque value barrier; re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group (printed alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier of the form `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly for the sampling budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call so lazy initialization doesn't pollute the measurement.
        std_black_box(routine());
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iterations = 0u64;
        loop {
            std_black_box(routine());
            iterations += 1;
            if start.elapsed() >= budget || iterations >= self.iterations {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Caps the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n as u64;
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.sample_size.max(1),
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        self.criterion
            .report(&self.name, &id, &bencher, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (All reporting already happened eagerly.)
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 100,
        }
    }

    /// Runs one stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        self
    }

    fn report(
        &mut self,
        group: &str,
        id: &BenchmarkId,
        bencher: &Bencher,
        throughput: Option<Throughput>,
    ) {
        let iters = bencher.iterations.max(1);
        let ns_per_iter = bencher.elapsed.as_nanos() as f64 / iters as f64;
        let full_name = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        let rate = match throughput {
            Some(Throughput::Elements(n)) if ns_per_iter > 0.0 => {
                format!("  ({:.3} Melem/s)", n as f64 / ns_per_iter * 1e3)
            }
            Some(Throughput::Bytes(n)) if ns_per_iter > 0.0 => {
                format!("  ({:.3} MiB/s)", n as f64 / ns_per_iter * 1e3 / 1.048_576)
            }
            _ => String::new(),
        };
        println!("{full_name:<50} time: {ns_per_iter:>12.1} ns/iter  ({iters} iterations){rate}");
    }
}

/// Declares a benchmark group function, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags such as `--bench`; a measuring stand-in has no
            // filtering or reporting options, so arguments are deliberately ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("add", 32).to_string(), "add/32");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
