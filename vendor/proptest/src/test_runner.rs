//! The minimal case-running machinery behind the [`proptest!`](crate::proptest) macro.

use crate::ProptestConfig;

/// The RNG handed to strategies. An alias of the vendored [`rand::rngs::StdRng`] so test
/// helpers can mix strategy-driven and hand-rolled randomness from one generator type.
pub type TestRng = rand::rngs::StdRng;

/// Runs the configured number of cases for one property test.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    next: u32,
    seed_base: u64,
}

/// FNV-1a, used to derive a stable per-test seed from the test's module path and name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl TestRunner {
    /// Creates a runner executing `config.cases` cases, seeded deterministically from
    /// `test_name`.
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        TestRunner {
            cases: config.cases,
            next: 0,
            seed_base: fnv1a(test_name.as_bytes()),
        }
    }

    /// Returns the RNG for the next case, or `None` once all cases have run.
    pub fn next_case(&mut self) -> Option<TestRng> {
        if self.next >= self.cases {
            return None;
        }
        let case = u64::from(self.next);
        self.next += 1;
        Some(<TestRng as rand::SeedableRng>::seed_from_u64(
            self.seed_base
                .wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ))
    }
}
