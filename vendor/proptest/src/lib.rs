//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this crate vendors the
//! subset of proptest this workspace actually uses: the [`proptest!`] macro (with
//! `#![proptest_config]`, `name in strategy` and `name: Type` parameter forms), the
//! [`Strategy`] trait with [`Strategy::prop_map`], [`any`], integer-range and tuple
//! strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted for a test-only stand-in:
//!
//! * **No shrinking.** A failing case panics with the generated inputs left to the assert
//!   message rather than being minimized first.
//! * **Deterministic seeding.** Case `i` of every test derives its RNG seed from the test
//!   name and `i`, so failures reproduce exactly in CI and locally with no seed file.
//! * `prop_assert*` panic immediately (they are `assert*`) instead of returning `Err`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The `proptest!` macro example necessarily shows `#[test]` functions inside a doctest;
// the doctest exists to prove the macro expands, not to run the inner test.
#![allow(clippy::test_attr_in_doctest)]

use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod test_runner;

use test_runner::TestRng;

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of an associated type.
///
/// This is the stub's whole strategy model: a strategy is just a value generator; there is
/// no shrinking tree behind it.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "uniform over the whole domain" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngExt::random::<u64>(rng) as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngExt::random::<bool>(rng)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngExt::random::<f64>(rng)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// A strategy producing uniformly arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy that always produces clones of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rand::RngExt::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test (panics on failure, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics on failure, no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (panics on failure, no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares a block of property-based tests.
///
/// Supported syntax (the subset this workspace uses):
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(a in 0u64..256, b: bool) {
///         prop_assert!(a < 256 || b);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, concat!(module_path!(), "::", stringify!($name)));
            while let Some(mut rng) = runner.next_case() {
                let rng = &mut rng;
                $crate::__proptest_bind!(rng $($params)*);
                $body
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one parameter per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident) => {};
    ($rng:ident,) => {};
    ($rng:ident $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::generate(&($strategy), $rng);
    };
    ($rng:ident $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strategy), $rng);
        $crate::__proptest_bind!($rng $($rest)*);
    };
    ($rng:ident $name:ident: $ty:ty) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
    };
    ($rng:ident $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled(max: u64) -> impl Strategy<Value = u64> {
        (0u64..max).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn range_strategies_stay_in_bounds(a in 0u64..256, b in 1usize..=32) {
            prop_assert!(a < 256);
            prop_assert!((1..=32).contains(&b));
        }

        #[test]
        fn type_ascription_binds_any(x: u32, flag: bool) {
            let _ = flag;
            prop_assert!(u64::from(x) <= u64::from(u32::MAX));
        }

        #[test]
        fn mapped_and_tuple_and_vec_strategies_compose(
            pairs in crate::collection::vec((any::<u64>(), any::<bool>()), 1..8),
            d in doubled(100),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 8);
            prop_assert_eq!(d % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_is_used_without_header(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn cases_are_deterministic_per_test_name() {
        let mut r1 = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(4), "t");
        let mut r2 = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(4), "t");
        while let (Some(mut a), Some(mut b)) = (r1.next_case(), r2.next_case()) {
            prop_assert_eq!(any::<u64>().generate(&mut a), any::<u64>().generate(&mut b));
        }
    }
}
