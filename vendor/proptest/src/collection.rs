//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use crate::Strategy;

/// An inclusive length range for collection strategies, converted from `usize`,
/// `Range<usize>` or `RangeInclusive<usize>` like real proptest's `SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { min: len, max: len }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and whose length is
/// uniform over `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Creates a [`VecStrategy`]; the counterpart of `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rand::RngExt::random_range(rng, self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
