//! Property-based end-to-end tests: random operands, random widths, every operation —
//! executed on the simulated DRAM and compared lane-by-lane against reference semantics.

use proptest::prelude::*;
use simdram_core::{reference_elementwise, ExecutionPolicy, SimdramConfig, SimdramMachine};
use simdram_logic::{word_mask, Operation};

fn run_op(
    op: Operation,
    width: usize,
    a_vals: &[u64],
    b_vals: &[u64],
    preds: &[bool],
    ambit: bool,
) -> Vec<u64> {
    let config = if ambit {
        SimdramConfig::functional_test_ambit()
    } else {
        SimdramConfig::functional_test()
    };
    let mut m = SimdramMachine::new(config).unwrap();
    let a = m.alloc_and_write(width, a_vals).unwrap();
    let b = m.alloc_and_write(width, b_vals).unwrap();
    let pred = m.alloc(1, a_vals.len()).unwrap();
    m.write_bools(&pred, preds).unwrap();
    let dst = m.alloc(op.output_width(width), a_vals.len()).unwrap();
    m.execute(
        op,
        &dst,
        &a,
        op.uses_second_operand().then_some(&b),
        op.uses_predicate().then_some(&pred),
    )
    .unwrap();
    m.read(&dst).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_operation_matches_reference_for_random_inputs(
        seed_values in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 4..40),
        width in 2usize..=12,
    ) {
        let mask = word_mask(width);
        let a: Vec<u64> = seed_values.iter().map(|v| v.0 & mask).collect();
        let b: Vec<u64> = seed_values.iter().map(|v| v.1 & mask).collect();
        let p: Vec<bool> = seed_values.iter().map(|v| v.2).collect();
        for op in Operation::ALL {
            let produced = run_op(op, width, &a, &b, &p, false);
            let expected = reference_elementwise(op, width, &a, &b, &p);
            prop_assert_eq!(&produced, &expected, "{} at width {}", op, width);
        }
    }

    #[test]
    fn threaded_and_sequential_policies_are_bit_identical(
        seed_values in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 260..700),
        width in 2usize..=10,
        max_threads in 1usize..=8,
    ) {
        // 260..700 elements span 2–3 of the functional-test machine's 4 subarrays (256
        // columns each), so the broadcast genuinely fans out.
        let mask = word_mask(width);
        let a_vals: Vec<u64> = seed_values.iter().map(|v| v.0 & mask).collect();
        let b_vals: Vec<u64> = seed_values.iter().map(|v| v.1 & mask).collect();
        let preds: Vec<bool> = seed_values.iter().map(|v| v.2).collect();
        for op in [Operation::Add, Operation::Sub, Operation::Greater, Operation::Max, Operation::IfElse] {
            let mut outcomes = Vec::new();
            for policy in [ExecutionPolicy::Sequential, ExecutionPolicy::Threaded { max_threads }] {
                let mut config = SimdramConfig::functional_test();
                config.execution = policy;
                let mut m = SimdramMachine::new(config).unwrap();
                let a = m.alloc_and_write(width, &a_vals).unwrap();
                let b = m.alloc_and_write(width, &b_vals).unwrap();
                let pred = m.alloc(1, preds.len()).unwrap();
                m.write_bools(&pred, &preds).unwrap();
                let dst = m.alloc(op.output_width(width), a_vals.len()).unwrap();
                let report = m.execute(
                    op,
                    &dst,
                    &a,
                    op.uses_second_operand().then_some(&b),
                    op.uses_predicate().then_some(&pred),
                ).unwrap();
                let clone = m.copy(&dst).unwrap();
                m.init(&a, mask & 0xA5).unwrap();
                let results = m.read(&clone).unwrap();
                outcomes.push((results, report, m.device_stats().clone()));
            }
            let (seq_results, seq_report, seq_stats) = &outcomes[0];
            let (thr_results, thr_report, thr_stats) = &outcomes[1];
            // Element results, the analytic ExecutionReport (latency/energy included) and
            // the functional DeviceStats must all be bit-identical across policies.
            prop_assert_eq!(seq_results, thr_results, "{} at width {}", op, width);
            prop_assert_eq!(seq_report, thr_report, "{} at width {}", op, width);
            prop_assert_eq!(seq_stats, thr_stats, "{} at width {}", op, width);
            prop_assert!(seq_stats.total_commands() > 0);
        }
    }

    #[test]
    fn estimation_engine_is_policy_invariant(
        seed_values in proptest::collection::vec((any::<u64>(), any::<u64>()), 260..700),
        width in 2usize..=10,
        max_threads in 1usize..=8,
    ) {
        // The trace-driven estimation engine must report identical energy totals and
        // identical max-over-banks busy latency whichever execution policy ran: both are
        // folds over the per-chunk CommandTraces, which the executor returns in chunk
        // order under either policy.
        let mask = word_mask(width);
        let a_vals: Vec<u64> = seed_values.iter().map(|v| v.0 & mask).collect();
        let b_vals: Vec<u64> = seed_values.iter().map(|v| v.1 & mask).collect();
        let mut estimates = Vec::new();
        let mut stats_latencies = Vec::new();
        for policy in [ExecutionPolicy::Sequential, ExecutionPolicy::Threaded { max_threads }] {
            let mut config = SimdramConfig::functional_test();
            config.execution = policy;
            let mut m = SimdramMachine::new(config).unwrap();
            let a = m.alloc_and_write(width, &a_vals).unwrap();
            let b = m.alloc_and_write(width, &b_vals).unwrap();
            let (sum, report) = m.binary(Operation::Add, &a, &b).unwrap();
            let _ = m.copy(&sum).unwrap();
            m.init(&b, 1).unwrap();
            // The per-operation measured numbers agree with the analytic model.
            prop_assert!((report.measured_latency_ns - report.latency_ns).abs()
                <= 1e-12 * report.latency_ns);
            prop_assert!((report.measured_energy_nj - report.energy_nj).abs()
                <= 1e-12 * report.energy_nj);
            stats_latencies.push(m.device_stats().total_latency_ns());
            estimates.push(m.estimate().clone());
        }
        // Bit-identical across policies: energy totals AND the max-over-banks latency.
        prop_assert_eq!(&estimates[0], &estimates[1]);
        prop_assert!(estimates[0].broadcasts >= 3);
        prop_assert!(estimates[0].energy_nj > 0.0);
        // 260..700 elements span 2-3 subarrays, so the parallel busy window is strictly
        // shorter than the sequential-issue sum the DeviceStats report.
        prop_assert!(estimates[0].busy_latency_ns < stats_latencies[0]);
        prop_assert!(estimates[0].cycles > 0);
    }

    #[test]
    fn simdram_and_ambit_targets_agree(
        seed_values in proptest::collection::vec((any::<u64>(), any::<u64>()), 4..24),
        width in 2usize..=8,
    ) {
        let mask = word_mask(width);
        let a: Vec<u64> = seed_values.iter().map(|v| v.0 & mask).collect();
        let b: Vec<u64> = seed_values.iter().map(|v| v.1 & mask).collect();
        let p = vec![false; a.len()];
        for op in [Operation::Add, Operation::Mul, Operation::Greater, Operation::Max, Operation::Div] {
            let simdram = run_op(op, width, &a, &b, &p, false);
            let ambit = run_op(op, width, &a, &b, &p, true);
            prop_assert_eq!(&simdram, &ambit, "{} at width {}", op, width);
        }
    }
}
