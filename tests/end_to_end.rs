//! Cross-crate integration tests: the full SIMDRAM pipeline from operation definition to
//! in-DRAM execution and back, on both the SIMDRAM and Ambit targets.

use simdram_core::{reference_elementwise, SimdramConfig, SimdramMachine};
use simdram_logic::{word_mask, Operation};

fn machine(ambit: bool) -> SimdramMachine {
    let config = if ambit {
        SimdramConfig::functional_test_ambit()
    } else {
        SimdramConfig::functional_test()
    };
    SimdramMachine::new(config).expect("functional test configuration is valid")
}

fn run_all_operations(ambit: bool) {
    let width = 8;
    let mask = word_mask(width);
    let a_vals: Vec<u64> = (0..200u64).map(|i| (i * 37 + 13) & mask).collect();
    let b_vals: Vec<u64> = (0..200u64).map(|i| (i * 91 + 5) & mask).collect();
    let preds: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();

    for op in Operation::ALL {
        let mut m = machine(ambit);
        let a = m.alloc_and_write(width, &a_vals).unwrap();
        let b = m.alloc_and_write(width, &b_vals).unwrap();
        let pred = m.alloc(1, a_vals.len()).unwrap();
        m.write_bools(&pred, &preds).unwrap();

        let dst = m.alloc(op.output_width(width), a_vals.len()).unwrap();
        let src_b = op.uses_second_operand().then_some(&b);
        let src_pred = op.uses_predicate().then_some(&pred);
        let report = m.execute(op, &dst, &a, src_b, src_pred).unwrap();
        assert!(report.commands > 0);
        assert!(report.latency_ns > 0.0);

        let produced = m.read(&dst).unwrap();
        let expected = reference_elementwise(op, width, &a_vals, &b_vals, &preds);
        assert_eq!(produced, expected, "{op} diverged (ambit = {ambit})");
    }
}

#[test]
fn simdram_executes_all_sixteen_operations_correctly() {
    run_all_operations(false);
}

#[test]
fn ambit_baseline_executes_all_sixteen_operations_correctly() {
    run_all_operations(true);
}

#[test]
fn simdram_issues_fewer_commands_than_ambit_for_every_operation() {
    let width = 16;
    for op in Operation::ALL {
        let mut counts = Vec::new();
        for ambit in [false, true] {
            let mut m = machine(ambit);
            let a = m.alloc_and_write(width, &[1, 2, 3, 4]).unwrap();
            let b = m.alloc_and_write(width, &[4, 3, 2, 1]).unwrap();
            let pred = m.alloc(1, 4).unwrap();
            m.write_bools(&pred, &[true, false, true, false]).unwrap();
            let dst = m.alloc(op.output_width(width), 4).unwrap();
            let report = m
                .execute(
                    op,
                    &dst,
                    &a,
                    op.uses_second_operand().then_some(&b),
                    op.uses_predicate().then_some(&pred),
                )
                .unwrap();
            counts.push(report.commands);
        }
        assert!(
            counts[0] <= counts[1],
            "{op}: SIMDRAM used {} commands, Ambit {}",
            counts[0],
            counts[1]
        );
    }
}

#[test]
fn chained_operations_compose_like_a_program() {
    // relu(|a - b|) followed by a comparison against a threshold — a small pipeline that
    // exercises vector reuse across operations.
    let mut m = machine(false);
    let a_vals: Vec<u64> = (0..100u64).map(|i| (i * 7) & 0xFF).collect();
    let b_vals: Vec<u64> = (0..100u64).map(|i| (i * 5 + 60) & 0xFF).collect();

    let a = m.alloc_and_write(8, &a_vals).unwrap();
    let b = m.alloc_and_write(8, &b_vals).unwrap();
    let (diff, _) = m.binary(Operation::Sub, &a, &b).unwrap();
    let (abs, _) = m.unary(Operation::Abs, &diff).unwrap();
    let threshold = m.alloc(8, 100).unwrap();
    m.init(&threshold, 50).unwrap();
    let (flag, _) = m.binary(Operation::Greater, &abs, &threshold).unwrap();

    let produced = m.read(&flag).unwrap();
    for i in 0..100 {
        let d = a_vals[i].wrapping_sub(b_vals[i]) & 0xFF;
        let abs_d = if d & 0x80 != 0 { (d ^ 0xFF) + 1 } else { d } & 0xFF;
        assert_eq!(produced[i], u64::from(abs_d > 50), "lane {i}");
    }
}

#[test]
fn machine_statistics_accumulate_across_a_session() {
    let mut m = machine(false);
    let a = m.alloc_and_write(8, &[1, 2, 3]).unwrap();
    let b = m.alloc_and_write(8, &[9, 8, 7]).unwrap();
    m.binary(Operation::Add, &a, &b).unwrap();
    m.binary(Operation::Mul, &a, &b).unwrap();
    let stats = m.stats();
    assert_eq!(stats.operations, 2);
    assert!(stats.commands > 0);
    assert!(stats.total_latency_ns() > stats.compute_latency_ns);
}
