//! Workspace-level smoke test: one binary operation executed end-to-end **through the
//! umbrella crate's re-exports only**.
//!
//! Every other integration test depends on the member crates directly; this one guards the
//! public re-export surface of the `simdram` umbrella crate itself, so a future rearrangement
//! of the workspace (renamed members, dropped re-exports) fails loudly here.

use simdram::simdram_core::{SimdramConfig, SimdramMachine};
use simdram::simdram_logic::Operation;

#[test]
fn umbrella_crate_executes_one_binary_op_end_to_end() {
    let mut machine =
        SimdramMachine::new(SimdramConfig::functional_test()).expect("functional config is valid");
    let a = machine
        .alloc_and_write(16, &[120, 4999, 25, 310])
        .expect("allocate operand A");
    let b = machine
        .alloc_and_write(16, &[200, 200, 200, 200])
        .expect("allocate operand B");
    let (result, report) = machine
        .binary(Operation::Greater, &b, &a)
        .expect("execute Greater");
    assert_eq!(
        machine.read(&result).expect("read result"),
        vec![1, 0, 1, 0],
        "200 > a elementwise"
    );
    assert!(report.commands > 0, "execution must account DRAM commands");
}

#[test]
fn umbrella_crate_reexports_every_member() {
    // Touch one public item per re-exported member crate so a dropped re-export is a
    // compile error in this test rather than a silent API break.
    let _ = simdram::simdram_dram::DramConfig::default();
    let _ = simdram::simdram_logic::Operation::Add;
    let _ = simdram::simdram_uprog::CodegenOptions::optimized();
    let _ = simdram::simdram_core::SimdramConfig::functional_test();
    let _ = simdram::simdram_baselines::Platform::Simdram { banks: 1 };
    let _ = simdram::simdram_apps::paper_kernels(0);
}
