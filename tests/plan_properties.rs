//! Property-based tests of the deferred dataflow frontend: random expression DAGs are
//! executed eagerly (one machine call per node, as a legacy program would) and as a
//! compiled `Plan`, under both execution policies, and must produce bit-identical vector
//! contents — while the plan's pooled temporaries never occupy more rows than the eager
//! schedule's intermediate allocations.

use proptest::prelude::*;
use simdram_core::{ExecutionPolicy, Expr, PlanBuilder, SimdVector, SimdramConfig, SimdramMachine};
use simdram_logic::{word_mask, Operation};

/// Operation pool for random DAG nodes (all width-preserving, so every node composes
/// with every other).
const BINARY_OPS: [Operation; 5] = [
    Operation::Add,
    Operation::Sub,
    Operation::Mul,
    Operation::Min,
    Operation::Max,
];
const UNARY_OPS: [Operation; 2] = [Operation::Abs, Operation::Relu];

/// One random DAG node: an operation picked from the pools plus operand indices into
/// the list of previously available expressions.
type NodeSpec = (u8, u8, u8);

fn pick_op(choice: u8) -> (Operation, bool) {
    let total = BINARY_OPS.len() + UNARY_OPS.len();
    let index = choice as usize % total;
    if index < BINARY_OPS.len() {
        (BINARY_OPS[index], true)
    } else {
        (UNARY_OPS[index - BINARY_OPS.len()], false)
    }
}

fn machine_with(policy: ExecutionPolicy) -> SimdramMachine {
    let mut config = SimdramConfig::functional_test();
    config.execution = policy;
    SimdramMachine::new(config).unwrap()
}

/// Executes the DAG eagerly, node by node, the way a legacy program would: every node
/// allocates its own destination, aliased binary operands go through an explicit
/// RowClone copy. Returns the two output vectors' contents plus the rows the schedule
/// held for constants, copies and non-output intermediates.
#[allow(clippy::too_many_arguments)]
fn run_eager(
    policy: ExecutionPolicy,
    specs: &[NodeSpec],
    a_vals: &[u64],
    b_vals: &[u64],
    width: usize,
    constant: u64,
    out_mid: usize,
    out_last: usize,
) -> (Vec<u64>, Vec<u64>, usize) {
    let mut m = machine_with(policy);
    let a = m.alloc_and_write(width, a_vals).unwrap();
    let b = m.alloc_and_write(width, b_vals).unwrap();
    let c = m.alloc(width, a_vals.len()).unwrap();
    m.init(&c, constant).unwrap();
    let mut temp_rows = width; // the constant vector
    let mut available: Vec<SimdVector> = vec![a, b, c];
    let mut nodes: Vec<SimdVector> = Vec::new();
    for &(op_choice, i1, i2) in specs {
        let (op, is_binary) = pick_op(op_choice);
        let lhs_index = i1 as usize % available.len();
        let lhs = available[lhs_index];
        let dst = if is_binary {
            let rhs_index = i2 as usize % available.len();
            let rhs = if rhs_index == lhs_index {
                // The μProgram binding needs disjoint operand rows; a legacy program
                // would duplicate the operand with a RowClone copy first.
                temp_rows += width;
                m.copy(&available[rhs_index]).unwrap()
            } else {
                available[rhs_index]
            };
            let (dst, _) = m.binary(op, &lhs, &rhs).unwrap();
            dst
        } else {
            let (dst, _) = m.unary(op, &lhs).unwrap();
            dst
        };
        temp_rows += width;
        available.push(dst);
        nodes.push(dst);
    }
    // The two outputs are not temporaries; everything else the schedule allocated is.
    temp_rows -= width; // out_last
    if out_mid != out_last {
        temp_rows -= width;
    }
    let mid = m.read(&nodes[out_mid]).unwrap();
    let last = m.read(&nodes[out_last]).unwrap();
    (mid, last, temp_rows)
}

/// Executes the same DAG as one compiled plan, returning the outputs and the plan's
/// pooled temp-row footprint.
#[allow(clippy::too_many_arguments)]
fn run_plan(
    policy: ExecutionPolicy,
    specs: &[NodeSpec],
    a_vals: &[u64],
    b_vals: &[u64],
    width: usize,
    constant: u64,
    out_mid: usize,
    out_last: usize,
) -> (Vec<u64>, Vec<u64>, usize) {
    let mut m = machine_with(policy);
    let a = m.alloc_and_write(width, a_vals).unwrap();
    let b = m.alloc_and_write(width, b_vals).unwrap();
    let mut s = PlanBuilder::new();
    let mut available: Vec<Expr> = vec![s.input(&a), s.input(&b)];
    available.push(s.constant(width, a_vals.len(), constant).unwrap());
    let mut nodes: Vec<Expr> = Vec::new();
    for &(op_choice, i1, i2) in specs {
        let (op, is_binary) = pick_op(op_choice);
        let lhs = available[i1 as usize % available.len()];
        let expr = if is_binary {
            let rhs = available[i2 as usize % available.len()];
            s.binary(op, lhs, rhs).unwrap()
        } else {
            s.unary(op, lhs).unwrap()
        };
        available.push(expr);
        nodes.push(expr);
    }
    let mid_handle = s.materialize(nodes[out_mid]).unwrap();
    let last_handle = s.materialize(nodes[out_last]).unwrap();
    let plan = s.compile().unwrap();
    let exec = m.run_plan(&plan).unwrap();
    let mid = m.read(exec.output(mid_handle)).unwrap();
    let last = m.read(exec.output(last_handle)).unwrap();
    (mid, last, plan.temp_rows())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_dags_are_bit_identical_to_eager_under_both_policies(
        specs in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..8),
        seed_values in proptest::collection::vec((any::<u64>(), any::<u64>()), 4..300),
        width in 2usize..=8,
        constant in any::<u64>(),
        mid_pick in any::<u8>(),
        max_threads in 1usize..=4,
    ) {
        let mask = word_mask(width);
        let a_vals: Vec<u64> = seed_values.iter().map(|v| v.0 & mask).collect();
        let b_vals: Vec<u64> = seed_values.iter().map(|v| v.1 & mask).collect();
        let out_last = specs.len() - 1;
        let out_mid = mid_pick as usize % specs.len();

        let policies = [
            ExecutionPolicy::Sequential,
            ExecutionPolicy::Threaded { max_threads },
        ];
        let mut eager_runs = Vec::new();
        let mut plan_runs = Vec::new();
        for policy in policies {
            eager_runs.push(run_eager(
                policy, &specs, &a_vals, &b_vals, width, constant, out_mid, out_last,
            ));
            plan_runs.push(run_plan(
                policy, &specs, &a_vals, &b_vals, width, constant, out_mid, out_last,
            ));
        }

        // Bit-identical vector contents: eager vs plan, under each policy, and across
        // policies.
        for (eager, plan) in eager_runs.iter().zip(&plan_runs) {
            prop_assert_eq!(&eager.0, &plan.0, "mid output diverged");
            prop_assert_eq!(&eager.1, &plan.1, "last output diverged");
        }
        prop_assert_eq!(&eager_runs[0].0, &eager_runs[1].0);
        prop_assert_eq!(&eager_runs[0].1, &eager_runs[1].1);
        prop_assert_eq!(&plan_runs[0].0, &plan_runs[1].0);
        prop_assert_eq!(&plan_runs[0].1, &plan_runs[1].1);

        // The compiled plan's pooled temporaries never exceed the eager schedule's
        // intermediate allocations (CSE, DCE and liveness reuse only shrink them).
        let (_, _, eager_temp_rows) = eager_runs[0];
        let (_, _, plan_temp_rows) = plan_runs[0];
        prop_assert!(
            plan_temp_rows <= eager_temp_rows,
            "plan used {plan_temp_rows} temp rows, eager used {eager_temp_rows}"
        );
    }
}
