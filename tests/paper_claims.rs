//! Integration tests asserting the *shape* of the paper's headline claims, as reproduced by
//! the analytic models. Absolute numbers differ from the paper (different substrate
//! constants); these tests pin down the qualitative results: who wins, in which direction,
//! and by roughly what kind of factor.

use simdram_apps::{kernel_comparison, paper_kernels, speedup};
use simdram_baselines::{platform_performance, Platform};
use simdram_core::AreaModel;
use simdram_dram::variation::{TechnologyNode, VariationModel};
use simdram_logic::Operation;
use simdram_uprog::{build_program, CodegenOptions, Target};

#[test]
fn simdram_improves_throughput_over_ambit_for_all_sixteen_operations() {
    for op in Operation::ALL {
        let simdram = platform_performance(Platform::Simdram { banks: 16 }, op, 32);
        let ambit = platform_performance(Platform::Ambit, op, 32);
        let speedup = simdram.throughput_gops / ambit.throughput_gops;
        assert!(
            speedup >= 1.0,
            "{op}: SIMDRAM should not be slower than Ambit (got {speedup:.2}x)"
        );
    }
    // At least one operation should show a multiple-x advantage (the paper reports up to 5.1x).
    let best = Operation::ALL
        .iter()
        .map(|&op| {
            platform_performance(Platform::Simdram { banks: 16 }, op, 32).throughput_gops
                / platform_performance(Platform::Ambit, op, 32).throughput_gops
        })
        .fold(0.0f64, f64::max);
    assert!(best > 2.0, "best speedup over Ambit was only {best:.2}x");
}

#[test]
fn simdram_is_much_faster_and_more_efficient_than_the_cpu() {
    let mut throughput_ratios = Vec::new();
    let mut efficiency_ratios = Vec::new();
    for op in Operation::ALL {
        let simdram = platform_performance(Platform::Simdram { banks: 16 }, op, 32);
        let cpu = platform_performance(Platform::Cpu, op, 32);
        throughput_ratios.push(simdram.throughput_gops / cpu.throughput_gops);
        efficiency_ratios.push(simdram.gops_per_watt / cpu.gops_per_watt);
    }
    let avg_throughput: f64 =
        throughput_ratios.iter().sum::<f64>() / throughput_ratios.len() as f64;
    let avg_efficiency: f64 =
        efficiency_ratios.iter().sum::<f64>() / efficiency_ratios.len() as f64;
    // Paper: 93x throughput and 257x energy efficiency over the CPU (averaged).
    assert!(
        avg_throughput > 20.0,
        "average CPU speedup only {avg_throughput:.1}x"
    );
    assert!(
        avg_efficiency > 50.0,
        "average CPU efficiency gain only {avg_efficiency:.1}x"
    );
}

#[test]
fn simdram_outperforms_the_gpu_on_average() {
    let mut ratios = Vec::new();
    for op in Operation::ALL {
        let simdram = platform_performance(Platform::Simdram { banks: 16 }, op, 32);
        let gpu = platform_performance(Platform::Gpu, op, 32);
        ratios.push(simdram.throughput_gops / gpu.throughput_gops);
    }
    let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    // Paper: 5.7x average over the GPU.
    assert!(avg > 2.0, "average GPU speedup only {avg:.1}x");
}

#[test]
fn application_kernels_speed_up_over_ambit_cpu_and_gpu() {
    for kernel in paper_kernels(0) {
        let costs = kernel_comparison(kernel.as_ref());
        let vs_ambit = speedup(&costs, Platform::Ambit, Platform::Simdram { banks: 16 });
        let vs_cpu = speedup(&costs, Platform::Cpu, Platform::Simdram { banks: 16 });
        assert!(vs_ambit > 1.0, "{}: vs Ambit {vs_ambit:.2}x", kernel.name());
        assert!(vs_cpu > 1.0, "{}: vs CPU {vs_cpu:.2}x", kernel.name());
    }
}

#[test]
fn dram_area_overhead_is_below_one_percent() {
    let area = AreaModel::default();
    assert!(area.dram_overhead_percent() < 1.0);
    assert!(area.cpu_overhead_percent() < 1.0);
}

#[test]
fn reliability_holds_at_realistic_technology_nodes() {
    let add32 = build_program(
        Target::Simdram,
        Operation::Add,
        32,
        CodegenOptions::optimized(),
    );
    for node in TechnologyNode::ALL {
        let model = VariationModel::for_node(node);
        let p_tra = model.tra_failure_probability(20_000, 99);
        let p_op = VariationModel::operation_success_probability(p_tra, add32.tra_count());
        assert!(
            p_op > 0.999,
            "32-bit addition should complete reliably at {} (success probability {p_op})",
            node.name()
        );
    }
    // Sanity: the model is not vacuous — extreme variation does break computation.
    let broken = VariationModel::with_cell_sigma(0.6).tra_failure_probability(20_000, 99);
    assert!(broken > 0.05);
}

#[test]
fn ablation_reuse_optimizations_reduce_commands() {
    for op in [
        Operation::Add,
        Operation::Mul,
        Operation::BitCount,
        Operation::Max,
    ] {
        let naive = build_program(Target::Simdram, op, 32, CodegenOptions::naive());
        let optimized = build_program(Target::Simdram, op, 32, CodegenOptions::optimized());
        assert!(optimized.command_count() < naive.command_count(), "{op}");
    }
}
