//! Umbrella crate for the SIMDRAM reproduction workspace.
//!
//! This crate only re-exports the member crates so that the runnable examples under
//! `examples/` and the integration tests under `tests/` have a single, convenient
//! dependency. The actual functionality lives in:
//!
//! - [`simdram_dram`]: the DRAM substrate simulator (Ambit-style compute subarrays).
//! - [`simdram_logic`]: Step 1 — MAJ/NOT (MIG) and AND/OR/NOT (AIG) circuit synthesis.
//! - [`simdram_uprog`]: Step 2 — operand-to-row mapping and μProgram generation.
//! - [`simdram_core`]: Step 3 — ISA, control unit, transposition unit and the
//!   [`simdram_core::SimdramMachine`] end-to-end executor.
//! - [`simdram_baselines`]: Ambit, CPU and GPU comparison models.
//! - [`simdram_apps`]: the seven real-world application kernels.
//! - [`simdram_serve`]: the multi-tenant plan-serving layer
//!   ([`simdram_serve::PlanServer`]).
//!
//! The layer-by-layer architecture book lives in `docs/ARCHITECTURE.md`.
//!
//! ```
//! use simdram::simdram_core::{SimdramConfig, SimdramMachine};
//!
//! let machine = SimdramMachine::new(SimdramConfig::functional_test()).unwrap();
//! assert_eq!(machine.lanes(), 1024);
//! ```

pub use simdram_apps;
pub use simdram_baselines;
pub use simdram_core;
pub use simdram_dram;
pub use simdram_logic;
pub use simdram_serve;
pub use simdram_uprog;
